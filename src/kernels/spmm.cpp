#include "kernels/spmm.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "parallel/atomic_float.hpp"

namespace pgcn::kernels {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;
using tensor::DenseMatrix;

namespace {

void
checkShapes(const Csr &a, const DenseMatrix &h_in)
{
    if (h_in.rows() != a.numVertices()) {
        PGCN_THROW(ShapeError, "SpMM input rows "
                                   << h_in.rows() << " != |V| = "
                                   << a.numVertices());
    }
}

} // namespace

void
spmmReference(const Csr &a, const DenseMatrix &h_in, DenseMatrix &h_out)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out = DenseMatrix(a.numVertices(), k);
    const auto &offsets = a.rowOffsets();
    const auto &cols = a.cols();
    const auto &vals = a.vals();
    for (VertexId u = 0; u < a.numVertices(); ++u) {
        auto out = h_out.row(u);
        for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
            const auto in = h_in.row(cols[e]);
            const float w = vals[e];
            for (uint64_t j = 0; j < k; ++j)
                out[j] += w * in[j];
        }
    }
}

void
spmmVertexParallel(const Csr &a, const DenseMatrix &h_in,
                   DenseMatrix &h_out, parallel::ThreadPool &pool,
                   uint64_t chunk_rows)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out = DenseMatrix(a.numVertices(), k);
    const auto &offsets = a.rowOffsets();
    const auto &cols = a.cols();
    const auto &vals = a.vals();

    pool.parallelFor(
        a.numVertices(), parallel::Schedule::Dynamic, chunk_rows,
        [&](unsigned, uint64_t begin, uint64_t end) {
            for (uint64_t u = begin; u < end; ++u) {
                auto out = h_out.row(u);
                for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
                    const auto in = h_in.row(cols[e]);
                    const float w = vals[e];
                    for (uint64_t j = 0; j < k; ++j)
                        out[j] += w * in[j];
                }
            }
        });
}

void
spmmEdgeParallel(const Csr &a, const DenseMatrix &h_in, DenseMatrix &h_out,
                 parallel::ThreadPool &pool)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out = DenseMatrix(a.numVertices(), k);
    const EdgeId nnz = a.numEdges();
    if (nnz == 0)
        return;

    const auto &offsets = a.rowOffsets();
    const auto &cols = a.cols();
    const auto &vals = a.vals();
    const unsigned num_threads = pool.numThreads();

    pool.parallelRegion([&](unsigned t) {
        const EdgeId start = nnz * t / num_threads;
        const EdgeId stop = nnz * (t + 1) / num_threads;
        if (start >= stop)
            return;

        // Algorithm 2 line 4: binary search for the row owning the
        // first non-zero of this thread's span.
        VertexId u = a.rowOfEdge(start);

        std::vector<float> buffer(k, 0.0f); // Algorithm 2 line 5
        auto flush = [&](VertexId row) {
            float *out = h_out.data() + static_cast<uint64_t>(row) * k;
            for (uint64_t j = 0; j < k; ++j) {
                if (buffer[j] != 0.0f) {
                    parallel::atomicAddFloat(out + j, buffer[j]);
                    buffer[j] = 0.0f;
                }
            }
        };

        for (EdgeId e = start; e < stop; ++e) {
            while (e >= offsets[u + 1]) { // row boundary (line 7)
                flush(u);
                ++u; // skip over empty rows too
            }
            const auto in = h_in.row(cols[e]);
            const float w = vals[e];
            for (uint64_t j = 0; j < k; ++j) // line 11
                buffer[j] += w * in[j];
        }
        flush(u);
    });
}

} // namespace pgcn::kernels
