#include "kernels/spmm.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "kernels/simd.hpp"
#include "parallel/atomic_float.hpp"

namespace pgcn::kernels {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;
using tensor::DenseMatrix;

namespace {

void
checkShapes(const Csr &a, const DenseMatrix &h_in)
{
    if (h_in.rows() != a.numVertices()) {
        PGCN_THROW(ShapeError, "SpMM input rows "
                                   << h_in.rows() << " != |V| = "
                                   << a.numVertices());
    }
}

} // namespace

std::vector<VertexId>
nnzBalancedRowChunks(std::span<const EdgeId> row_offsets, unsigned parts)
{
    PGCN_ASSERT(!row_offsets.empty(), "row offsets must have size rows+1");
    PGCN_ASSERT(parts > 0, "nnz chunking needs at least one part");
    const uint64_t rows = row_offsets.size() - 1;
    const EdgeId base = row_offsets.front();
    const EdgeId nnz = row_offsets.back() - base;

    std::vector<VertexId> bounds(parts + 1);
    bounds[0] = 0;
    for (unsigned p = 1; p < parts; ++p) {
        const EdgeId target = base + nnz * p / parts;
        const auto it = std::lower_bound(row_offsets.begin(),
                                         row_offsets.end(), target);
        const auto r = std::min<uint64_t>(
            static_cast<uint64_t>(it - row_offsets.begin()), rows);
        bounds[p] = std::max(bounds[p - 1], static_cast<VertexId>(r));
    }
    bounds[parts] = static_cast<VertexId>(rows);
    return bounds;
}

std::vector<VertexId>
nnzBalancedRowChunksAligned(std::span<const EdgeId> row_offsets,
                            std::span<const VertexId> boundaries,
                            unsigned parts)
{
    PGCN_ASSERT(!row_offsets.empty(), "row offsets must have size rows+1");
    PGCN_ASSERT(parts > 0, "nnz chunking needs at least one part");
    const uint64_t rows = row_offsets.size() - 1;
    PGCN_ASSERT(boundaries.size() >= 2 && boundaries.front() == 0 &&
                    boundaries.back() == rows,
                "island boundaries must span [0, rows]");
    const EdgeId base = row_offsets.front();
    const EdgeId nnz = row_offsets.back() - base;

    // Cumulative non-zeros at each island boundary; the split targets
    // are snapped to the boundary whose cumulative count is nearest.
    std::vector<EdgeId> cum(boundaries.size());
    for (size_t b = 0; b < boundaries.size(); ++b)
        cum[b] = row_offsets[boundaries[b]] - base;

    std::vector<VertexId> bounds(parts + 1);
    bounds[0] = 0;
    for (unsigned p = 1; p < parts; ++p) {
        const EdgeId target = nnz * p / parts;
        const auto it = std::lower_bound(cum.begin(), cum.end(), target);
        size_t b = static_cast<size_t>(it - cum.begin());
        // lower_bound gives the first boundary at/after the target;
        // the one before may be closer.
        if (b == cum.size())
            b = cum.size() - 1;
        else if (b > 0 && target - cum[b - 1] < cum[b] - target)
            b -= 1;
        bounds[p] = std::max(bounds[p - 1], boundaries[b]);
    }
    bounds[parts] = static_cast<VertexId>(rows);
    return bounds;
}

void
spmmReference(const Csr &a, const DenseMatrix &h_in, DenseMatrix &h_out)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out.resize(a.numVertices(), k);
    const auto &offsets = a.rowOffsets();
    const auto &cols = a.cols();
    const auto &vals = a.vals();
    for (VertexId u = 0; u < a.numVertices(); ++u) {
        auto out = h_out.row(u);
        for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
            const auto in = h_in.row(cols[e]);
            const float w = vals[e];
            for (uint64_t j = 0; j < k; ++j)
                out[j] += w * in[j];
        }
    }
}

void
spmmVertexParallel(const Csr &a, const DenseMatrix &h_in,
                   DenseMatrix &h_out, parallel::ThreadPool &pool,
                   uint64_t chunk_rows)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out.resizeForOverwrite(a.numVertices(), k);
    const auto &ops = simd::ops();
    const uint64_t *offsets = a.rowOffsets().data();
    const uint32_t *cols = a.cols().data();
    const float *vals = a.vals().data();
    float *out = h_out.data();
    const float *in = h_in.data();

    pool.parallelFor(
        a.numVertices(), parallel::Schedule::Dynamic, chunk_rows,
        [&](unsigned, uint64_t begin, uint64_t end) {
            ops.spmmRowRange(out, in, k, offsets, cols, vals, begin, end,
                             /*out_row_base=*/0);
        });
}

void
spmmEdgeParallel(const Csr &a, const DenseMatrix &h_in, DenseMatrix &h_out,
                 parallel::ThreadPool &pool)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out.resize(a.numVertices(), k);
    const EdgeId nnz = a.numEdges();
    if (nnz == 0 || k == 0)
        return;

    const auto &ops = simd::ops();
    const uint64_t *offsets = a.rowOffsets().data();
    const uint32_t *cols = a.cols().data();
    const float *vals = a.vals().data();
    const float *in = h_in.data();
    float *out = h_out.data();
    const unsigned num_threads = pool.numThreads();

    pool.parallelRegion([&](unsigned t) {
        const EdgeId start = nnz * t / num_threads;
        const EdgeId stop = nnz * (t + 1) / num_threads;
        if (start >= stop)
            return;

        // Algorithm 2 line 4: binary search for the rows owning the
        // first and last non-zero of this thread's span.
        const VertexId first_row = a.rowOfEdge(start);
        const VertexId last_row = a.rowOfEdge(stop - 1);
        // A row is *shared* with a neighbouring thread iff this span
        // does not cover all of it; only those need the private
        // accumulator + atomic flush (Algorithm 2 lines 5/7). All
        // interior rows are exclusively owned and take the vectorized
        // overwrite path.
        const bool first_shared = start > offsets[first_row];
        const bool last_shared = stop < offsets[last_row + 1];

        // Per-thread K-wide accumulator, owned by the pool: reused
        // across calls, no allocation after the first.
        float *buffer = pool.scratchFloats(t, k);
        auto accumulate_flush = [&](VertexId row, EdgeId e0, EdgeId e1) {
            std::memset(buffer, 0, k * sizeof(float));
            for (EdgeId e = e0; e < e1; ++e) {
                ops.axpy(buffer,
                         in + static_cast<uint64_t>(cols[e]) * k, vals[e],
                         k);
            }
            float *out_row = out + static_cast<uint64_t>(row) * k;
            for (uint64_t j = 0; j < k; ++j) {
                if (buffer[j] != 0.0f)
                    parallel::atomicAddFloat(out_row + j, buffer[j]);
            }
        };

        if (first_row == last_row) {
            if (first_shared || last_shared) {
                accumulate_flush(first_row, start, stop);
            } else {
                ops.spmmRowRange(out, in, k, offsets, cols, vals,
                                 first_row, first_row + 1, 0);
            }
            return;
        }

        if (first_shared)
            accumulate_flush(first_row, start, offsets[first_row + 1]);
        const VertexId interior_begin =
            first_row + (first_shared ? 1 : 0);
        const VertexId interior_end = last_row + (last_shared ? 0 : 1);
        if (interior_begin < interior_end) {
            ops.spmmRowRange(out, in, k, offsets, cols, vals,
                             interior_begin, interior_end, 0);
        }
        if (last_shared)
            accumulate_flush(last_row, offsets[last_row], stop);
    });
}

void
spmmNnzBalanced(const Csr &a, const DenseMatrix &h_in, DenseMatrix &h_out,
                parallel::ThreadPool &pool)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out.resizeForOverwrite(a.numVertices(), k);
    if (a.numVertices() == 0)
        return;

    const auto &ops = simd::ops();
    const auto bounds =
        nnzBalancedRowChunks(a.rowOffsets(), pool.numThreads());
    const uint64_t *offsets = a.rowOffsets().data();
    const uint32_t *cols = a.cols().data();
    const float *vals = a.vals().data();
    float *out = h_out.data();
    const float *in = h_in.data();

    pool.parallelRegion([&](unsigned t) {
        ops.spmmRowRange(out, in, k, offsets, cols, vals, bounds[t],
                         bounds[t + 1], /*out_row_base=*/0);
    });
}

void
spmmIslandBalanced(const Csr &a, std::span<const VertexId> boundaries,
                   const DenseMatrix &h_in, DenseMatrix &h_out,
                   parallel::ThreadPool &pool)
{
    checkShapes(a, h_in);
    const uint64_t k = h_in.cols();
    h_out.resizeForOverwrite(a.numVertices(), k);
    if (a.numVertices() == 0)
        return;

    const auto &ops = simd::ops();
    const auto bounds = nnzBalancedRowChunksAligned(
        a.rowOffsets(), boundaries, pool.numThreads());
    const uint64_t *offsets = a.rowOffsets().data();
    const uint32_t *cols = a.cols().data();
    const float *vals = a.vals().data();
    float *out = h_out.data();
    const float *in = h_in.data();

    pool.parallelRegion([&](unsigned t) {
        ops.spmmRowRange(out, in, k, offsets, cols, vals, bounds[t],
                         bounds[t + 1], /*out_row_base=*/0);
    });
}

} // namespace pgcn::kernels
