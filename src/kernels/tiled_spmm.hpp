/**
 * @file
 * Column-tiled SpMM: the standard cache-blocking optimisation for CPU
 * SpMM (cf. the coalesced-row-caching idea of GE-SpMM [11] and the
 * paper's observation that CPU SpMM performance hinges on feature
 * reuse). Columns are split into tiles whose feature rows fit a cache
 * budget; each tile is processed in a separate pass so its slice of
 * H_in stays resident while every row that touches it accumulates.
 *
 * Trade-off: the CSR is re-read once per tile (cheap: 8 B/edge) in
 * exchange for feature reuse within the tile (saves K*4 B per reused
 * access) — worthwhile exactly when K is large and the graph has
 * locality, the regime where the paper found the Xeon competitive.
 */
#ifndef PGCN_KERNELS_TILED_SPMM_HPP
#define PGCN_KERNELS_TILED_SPMM_HPP

#include <vector>

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dense_matrix.hpp"

namespace pgcn::kernels {

/**
 * A column-tiled SpMM operator: preprocess once, apply to any
 * feature matrix of the configured width.
 */
class TiledSpmm
{
  public:
    /**
     * Partition @p a into column tiles sized for @p cache_budget
     * bytes of feature rows at @p embedding_dim floats per row.
     *
     * @param a Sparse matrix (kept by value inside tile structures;
     *        the original can be discarded).
     * @param embedding_dim Width of the feature matrices this
     *        operator will be applied to.
     * @param cache_budget Bytes of cache to target per tile.
     */
    TiledSpmm(const graph::Csr &a, uint64_t embedding_dim,
              double cache_budget = 32.0 * 1024 * 1024);

    /**
     * Partition @p a into EXPLICIT column tiles — tile t covers
     * columns [boundaries[t], boundaries[t+1]). Pass the boundaries
     * of an islandized ordering (graph::islandOrder) to make each
     * island one tile: the tile's feature slice is then the island's
     * own vertices, which is the I-GCN locality argument in host
     * form.
     *
     * @param a Sparse matrix.
     * @param embedding_dim Width of the feature matrices.
     * @param boundaries Monotone column boundaries, 0 .. |V|
     *        inclusive (islandOrder / uniformIslands format).
     */
    TiledSpmm(const graph::Csr &a, uint64_t embedding_dim,
              const std::vector<graph::VertexId> &boundaries);

    /** Number of column tiles chosen. */
    size_t numTiles() const { return tiles_.size(); }

    /** Matrix dimension. */
    graph::VertexId numVertices() const { return numVertices_; }

    /**
     * Compute h_out = A h_in using one pass per tile.
     *
     * @param h_in Input features (|V| x embedding_dim).
     * @param h_out Output; resized/zeroed by the call.
     * @param pool Thread pool (rows within a tile run in parallel;
     *        tiles run back-to-back, keeping writes conflict-free).
     */
    void apply(const tensor::DenseMatrix &h_in,
               tensor::DenseMatrix &h_out,
               parallel::ThreadPool &pool) const;

  private:
    /** Sub-CSR of one column range, keeping only non-empty rows. */
    struct Tile
    {
        graph::VertexId colBegin;
        graph::VertexId colEnd;
        std::vector<graph::VertexId> rowIds;  ///< non-empty rows
        std::vector<graph::EdgeId> rowOffsets;///< size rowIds+1
        std::vector<graph::VertexId> cols;
        std::vector<graph::Value> vals;
    };

    /** Shared ctor body: bucket non-zeros into the prepared tiles_. */
    void buildTiles(const graph::Csr &a,
                    const std::vector<graph::VertexId> &tile_of_col);

    graph::VertexId numVertices_;
    uint64_t embeddingDim_;
    std::vector<Tile> tiles_;
};

} // namespace pgcn::kernels

#endif // PGCN_KERNELS_TILED_SPMM_HPP
