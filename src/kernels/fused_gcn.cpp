#include "kernels/fused_gcn.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "kernels/simd.hpp"
#include "kernels/spmm.hpp"

namespace pgcn::kernels {

using graph::Csr;
using graph::VertexId;
using tensor::DenseMatrix;

namespace {

/** Lazily-grown per-thread buffer for the packed weight panel. */
float *
packScratch(uint64_t elems)
{
    static thread_local simd::AlignedBuffer buf;
    static thread_local uint64_t cap = 0;
    if (cap < elems) {
        buf = simd::makeAlignedBuffer(elems);
        cap = elems;
    }
    return buf.get();
}

} // namespace

void
fusedSpmmGemm(const Csr &a, const DenseMatrix &h_in, const DenseMatrix &w,
              DenseMatrix &h_out, parallel::ThreadPool &pool,
              bool apply_relu, uint64_t tile_rows)
{
    if (h_in.rows() != a.numVertices()) {
        PGCN_THROW(ShapeError, "fused input rows "
                                   << h_in.rows() << " != |V| = "
                                   << a.numVertices());
    }
    if (h_in.cols() != w.rows()) {
        PGCN_THROW(ShapeError, "fused inner dims "
                                   << h_in.cols() << " x " << w.rows());
    }
    PGCN_ASSERT(tile_rows > 0, "fused tile must have at least one row");

    const uint64_t k_in = h_in.cols();
    const uint64_t k_out = w.cols();
    h_out.resizeForOverwrite(a.numVertices(), k_out);
    if (a.numVertices() == 0 || k_out == 0)
        return;

    const auto &ops = simd::ops();
    float *pack = packScratch(simd::gemmPackBufferElems(k_out, k_in));
    ops.gemmPackB(w.data(), k_out, k_out, k_in, pack);

    const auto bounds =
        nnzBalancedRowChunks(a.rowOffsets(), pool.numThreads());
    const uint64_t *offsets = a.rowOffsets().data();
    const uint32_t *cols = a.cols().data();
    const float *vals = a.vals().data();
    const float *in = h_in.data();
    float *out = h_out.data();

    pool.parallelRegion([&](unsigned t) {
        const VertexId r0 = bounds[t];
        const VertexId r1 = bounds[t + 1];
        if (r0 >= r1)
            return;
        float *tile = pool.scratchFloats(t, tile_rows * k_in);
        for (VertexId base = r0; base < r1;) {
            const auto stop = static_cast<VertexId>(
                std::min<uint64_t>(r1, base + tile_rows));
            const uint64_t m = stop - base;
            // Aggregate this row tile into cache-resident scratch...
            ops.spmmRowRange(tile, in, k_in, offsets, cols, vals, base,
                             stop, /*out_row_base=*/base);
            // ...transform it while hot...
            float *out_rows = out + static_cast<uint64_t>(base) * k_out;
            ops.gemmPrepacked(tile, k_in, pack, out_rows, k_out, m, k_out,
                              k_in, /*accumulate=*/false);
            // ...and activate the output rows before they leave cache.
            if (apply_relu)
                ops.relu(out_rows, m * k_out);
            base = stop;
        }
    });
}

} // namespace pgcn::kernels
