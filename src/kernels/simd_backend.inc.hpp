/**
 * @file
 * Shared templated implementation of the SIMD kernel backends.
 *
 * Each backend translation unit (simd_scalar.cpp, simd_avx2.cpp,
 * simd_avx512.cpp) defines a vector Policy — lane count plus
 * load/store/fma/max primitives over its register type — and
 * instantiates Backend<Policy> here, compiled with that TU's -m
 * flags. The kernels themselves are written once:
 *
 *  - axpy / relu / addBias: straight-line vector loops with scalar
 *    tails.
 *  - spmmRowRange / spmmGatherRows: the feature dimension is walked
 *    in blocks of four vector registers that stay resident across
 *    all non-zeros of a row (multi-accumulator inner loop), so each
 *    output row is written exactly once and the inner loop is pure
 *    FMA on loaded feature rows.
 *  - gemmPackB / gemmPrepacked: BLIS-style packed GEMM. B is packed
 *    into NR-column panels (NR = two vector registers); the
 *    microkernel computes an MR x NR register tile (MR = 6) with
 *    KC-blocked accumulation over the inner dimension.
 */
#ifndef PGCN_KERNELS_SIMD_BACKEND_INC_HPP
#define PGCN_KERNELS_SIMD_BACKEND_INC_HPP

#include <algorithm>
#include <cstdint>

#include "kernels/simd.hpp"

namespace pgcn::kernels::simd::detail {

/** Rows per GEMM register tile. */
inline constexpr uint64_t kGemmMr = 6;
/** Inner-dimension cache block of the packed GEMM. */
inline constexpr uint64_t kGemmKc = 256;
/** Widest panel across tiers (AVX-512: NR = 2 * 16). */
inline constexpr uint64_t kGemmNrMax = 32;

template <class P> struct Backend
{
    using V = typename P::V;
    static constexpr uint64_t W = P::W;
    /** Panel width: two vector registers of columns. */
    static constexpr uint64_t NR = 2 * W;

    static void
    axpy(float *y, const float *x, float w, uint64_t k)
    {
        const V vw = P::set1(w);
        uint64_t j = 0;
        for (; j + 4 * W <= k; j += 4 * W) {
            P::store(y + j, P::fma(vw, P::load(x + j), P::load(y + j)));
            P::store(y + j + W,
                     P::fma(vw, P::load(x + j + W), P::load(y + j + W)));
            P::store(y + j + 2 * W, P::fma(vw, P::load(x + j + 2 * W),
                                           P::load(y + j + 2 * W)));
            P::store(y + j + 3 * W, P::fma(vw, P::load(x + j + 3 * W),
                                           P::load(y + j + 3 * W)));
        }
        for (; j + W <= k; j += W)
            P::store(y + j, P::fma(vw, P::load(x + j), P::load(y + j)));
        for (; j < k; ++j)
            y[j] += w * x[j];
    }

    /**
     * One output row, feature block [j, j + NB*W): NB accumulators
     * held in registers across every non-zero of the row, so each
     * feature row is gathered in as few passes as possible (NB = 8
     * covers a whole k=128 row in one pass on AVX-512), and the row
     * start — the one access the hardware prefetcher cannot predict —
     * is touched once instead of once per pass.
     */
    template <int NB>
    static void
    rowBlockN(float *out_row, const float *h_in, uint64_t k,
              const uint32_t *cols, const float *vals, uint64_t e0,
              uint64_t e1, uint64_t j, bool accumulate)
    {
        V acc[NB];
        for (int b = 0; b < NB; ++b) {
            acc[b] = accumulate
                         ? P::load(out_row + j + static_cast<uint64_t>(b) * W)
                         : P::zero();
        }
        for (uint64_t e = e0; e < e1; ++e) {
            const float *in =
                h_in + static_cast<uint64_t>(cols[e]) * k + j;
            const V vw = P::set1(vals[e]);
            for (int b = 0; b < NB; ++b) {
                acc[b] = P::fma(
                    vw, P::load(in + static_cast<uint64_t>(b) * W),
                    acc[b]);
            }
        }
        for (int b = 0; b < NB; ++b)
            P::store(out_row + j + static_cast<uint64_t>(b) * W, acc[b]);
    }

    /** One output row, all feature blocks. */
    static void
    rowKernel(float *out_row, const float *h_in, uint64_t k,
              const uint32_t *cols, const float *vals, uint64_t e0,
              uint64_t e1, bool accumulate)
    {
        uint64_t j = 0;
        for (; j + 8 * W <= k; j += 8 * W)
            rowBlockN<8>(out_row, h_in, k, cols, vals, e0, e1, j,
                         accumulate);
        for (; j + 4 * W <= k; j += 4 * W)
            rowBlockN<4>(out_row, h_in, k, cols, vals, e0, e1, j,
                         accumulate);
        for (; j + W <= k; j += W) {
            V a = accumulate ? P::load(out_row + j) : P::zero();
            for (uint64_t e = e0; e < e1; ++e) {
                const float *in =
                    h_in + static_cast<uint64_t>(cols[e]) * k + j;
                a = P::fma(P::set1(vals[e]), P::load(in), a);
            }
            P::store(out_row + j, a);
        }
        for (; j < k; ++j) {
            float s = accumulate ? out_row[j] : 0.0f;
            for (uint64_t e = e0; e < e1; ++e)
                s += vals[e] * h_in[static_cast<uint64_t>(cols[e]) * k + j];
            out_row[j] = s;
        }
    }

    static void
    spmmRowRange(float *out, const float *h_in, uint64_t k,
                 const uint64_t *offsets, const uint32_t *cols,
                 const float *vals, uint64_t row_begin, uint64_t row_end,
                 uint64_t out_row_base)
    {
        for (uint64_t u = row_begin; u < row_end; ++u) {
            float *out_row = out + (u - out_row_base) * k;
            rowKernel(out_row, h_in, k, cols, vals, offsets[u],
                      offsets[u + 1], /*accumulate=*/false);
        }
    }

    static void
    spmmGatherRows(float *out, const float *h_in, uint64_t k,
                   const uint32_t *row_ids, const uint64_t *offsets,
                   const uint32_t *cols, const float *vals,
                   uint64_t i_begin, uint64_t i_end)
    {
        for (uint64_t i = i_begin; i < i_end; ++i) {
            float *out_row =
                out + static_cast<uint64_t>(row_ids[i]) * k;
            rowKernel(out_row, h_in, k, cols, vals, offsets[i],
                      offsets[i + 1], /*accumulate=*/true);
        }
    }

    static void
    relu(float *p, uint64_t n)
    {
        uint64_t i = 0;
        for (; i + 4 * W <= n; i += 4 * W) {
            P::store(p + i, P::max0(P::load(p + i)));
            P::store(p + i + W, P::max0(P::load(p + i + W)));
            P::store(p + i + 2 * W, P::max0(P::load(p + i + 2 * W)));
            P::store(p + i + 3 * W, P::max0(P::load(p + i + 3 * W)));
        }
        for (; i + W <= n; i += W)
            P::store(p + i, P::max0(P::load(p + i)));
        for (; i < n; ++i)
            p[i] = p[i] < 0.0f ? 0.0f : p[i];
    }

    static void
    addBias(float *m, const float *bias, uint64_t rows, uint64_t cols)
    {
        for (uint64_t r = 0; r < rows; ++r) {
            float *row = m + r * cols;
            uint64_t c = 0;
            for (; c + W <= cols; c += W)
                P::store(row + c,
                         P::add(P::load(row + c), P::load(bias + c)));
            for (; c < cols; ++c)
                row[c] += bias[c];
        }
    }

    static void
    gemmPackB(const float *b, uint64_t ldb, uint64_t n, uint64_t kk,
              float *pack_buf)
    {
        uint64_t panel = 0;
        for (uint64_t j0 = 0; j0 < n; j0 += NR, ++panel) {
            float *dst = pack_buf + panel * kk * NR;
            const uint64_t jw = std::min(NR, n - j0);
            for (uint64_t p = 0; p < kk; ++p) {
                const float *src = b + p * ldb + j0;
                uint64_t j = 0;
                for (; j < jw; ++j)
                    dst[j] = src[j];
                for (; j < NR; ++j)
                    dst[j] = 0.0f;
                dst += NR;
            }
        }
    }

    /**
     * MR_ x NR register-tile microkernel over packed-B panel rows
     * [p0, p1). Writes the jw (<= NR) valid columns of C; beta_one
     * accumulates into the existing C values.
     */
    template <int MR_>
    static void
    micro(const float *a, uint64_t lda, const float *panel, float *c,
          uint64_t ldc, uint64_t p0, uint64_t p1, bool beta_one,
          uint64_t jw)
    {
        V acc[MR_][2];
        for (int r = 0; r < MR_; ++r) {
            acc[r][0] = P::zero();
            acc[r][1] = P::zero();
        }
        for (uint64_t p = p0; p < p1; ++p) {
            const V b0 = P::load(panel + p * NR);
            const V b1 = P::load(panel + p * NR + W);
            for (int r = 0; r < MR_; ++r) {
                const V va = P::set1(a[static_cast<uint64_t>(r) * lda + p]);
                acc[r][0] = P::fma(va, b0, acc[r][0]);
                acc[r][1] = P::fma(va, b1, acc[r][1]);
            }
        }
        if (jw == NR) {
            for (int r = 0; r < MR_; ++r) {
                float *crow = c + static_cast<uint64_t>(r) * ldc;
                if (beta_one) {
                    P::store(crow, P::add(P::load(crow), acc[r][0]));
                    P::store(crow + W,
                             P::add(P::load(crow + W), acc[r][1]));
                } else {
                    P::store(crow, acc[r][0]);
                    P::store(crow + W, acc[r][1]);
                }
            }
        } else {
            alignas(64) float tmp[kGemmMr * kGemmNrMax * 2];
            for (int r = 0; r < MR_; ++r) {
                P::store(tmp + static_cast<uint64_t>(r) * NR, acc[r][0]);
                P::store(tmp + static_cast<uint64_t>(r) * NR + W,
                         acc[r][1]);
            }
            for (int r = 0; r < MR_; ++r) {
                float *crow = c + static_cast<uint64_t>(r) * ldc;
                const float *trow = tmp + static_cast<uint64_t>(r) * NR;
                for (uint64_t j = 0; j < jw; ++j)
                    crow[j] = beta_one ? crow[j] + trow[j] : trow[j];
            }
        }
    }

    static void
    microDispatch(int mr, const float *a, uint64_t lda, const float *panel,
                  float *c, uint64_t ldc, uint64_t p0, uint64_t p1,
                  bool beta_one, uint64_t jw)
    {
        switch (mr) {
        case 6: micro<6>(a, lda, panel, c, ldc, p0, p1, beta_one, jw); break;
        case 5: micro<5>(a, lda, panel, c, ldc, p0, p1, beta_one, jw); break;
        case 4: micro<4>(a, lda, panel, c, ldc, p0, p1, beta_one, jw); break;
        case 3: micro<3>(a, lda, panel, c, ldc, p0, p1, beta_one, jw); break;
        case 2: micro<2>(a, lda, panel, c, ldc, p0, p1, beta_one, jw); break;
        default: micro<1>(a, lda, panel, c, ldc, p0, p1, beta_one, jw);
        }
    }

    static void
    gemmPrepacked(const float *a, uint64_t lda, const float *packed_b,
                  float *c, uint64_t ldc, uint64_t m, uint64_t n,
                  uint64_t kk, bool accumulate)
    {
        if (kk == 0) {
            if (!accumulate) {
                for (uint64_t i = 0; i < m; ++i) {
                    float *crow = c + i * ldc;
                    for (uint64_t j = 0; j < n; ++j)
                        crow[j] = 0.0f;
                }
            }
            return;
        }
        for (uint64_t pc = 0; pc < kk; pc += kGemmKc) {
            const uint64_t p1 = std::min(pc + kGemmKc, kk);
            const bool beta_one = accumulate || pc > 0;
            for (uint64_t i0 = 0; i0 < m; i0 += kGemmMr) {
                const int mr = static_cast<int>(
                    std::min<uint64_t>(kGemmMr, m - i0));
                uint64_t panel = 0;
                for (uint64_t j0 = 0; j0 < n; j0 += NR, ++panel) {
                    const float *panel_base =
                        packed_b + panel * kk * NR;
                    microDispatch(mr, a + i0 * lda, lda, panel_base,
                                  c + i0 * ldc + j0, ldc, pc, p1,
                                  beta_one, std::min(NR, n - j0));
                }
            }
        }
    }
};

/** Fill an Ops table from one backend instantiation. */
template <class P>
Ops
makeOps(Tier tier)
{
    Ops t;
    t.tier = tier;
    t.width = P::W;
    t.axpy = &Backend<P>::axpy;
    t.spmmRowRange = &Backend<P>::spmmRowRange;
    t.spmmGatherRows = &Backend<P>::spmmGatherRows;
    t.relu = &Backend<P>::relu;
    t.addBias = &Backend<P>::addBias;
    t.gemmPackB = &Backend<P>::gemmPackB;
    t.gemmPrepacked = &Backend<P>::gemmPrepacked;
    return t;
}

} // namespace pgcn::kernels::simd::detail

#endif // PGCN_KERNELS_SIMD_BACKEND_INC_HPP
