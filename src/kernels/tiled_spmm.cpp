#include "kernels/tiled_spmm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "kernels/simd.hpp"
#include "kernels/spmm.hpp"

namespace pgcn::kernels {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;
using tensor::DenseMatrix;

TiledSpmm::TiledSpmm(const Csr &a, uint64_t embedding_dim,
                     double cache_budget)
    : numVertices_(a.numVertices()), embeddingDim_(embedding_dim)
{
    if (embedding_dim == 0)
        PGCN_THROW(ShapeError, "embedding dim must be positive");
    if (!(cache_budget > 0))
        PGCN_THROW(ConfigError, "cache budget must be positive");

    const double row_bytes = 4.0 * static_cast<double>(embedding_dim);
    const auto tile_width = static_cast<VertexId>(std::max<double>(
        1.0, cache_budget / std::max(row_bytes, 1.0)));
    const size_t num_tiles =
        numVertices_ == 0
            ? 0
            : (numVertices_ + tile_width - 1) / tile_width;
    tiles_.resize(num_tiles);
    std::vector<VertexId> tile_of_col(numVertices_);
    for (size_t t = 0; t < num_tiles; ++t) {
        tiles_[t].colBegin = static_cast<VertexId>(t * tile_width);
        tiles_[t].colEnd = static_cast<VertexId>(
            std::min<uint64_t>(numVertices_, (t + 1) * tile_width));
        for (VertexId c = tiles_[t].colBegin; c < tiles_[t].colEnd; ++c)
            tile_of_col[c] = static_cast<VertexId>(t);
    }
    buildTiles(a, tile_of_col);
}

TiledSpmm::TiledSpmm(const Csr &a, uint64_t embedding_dim,
                     const std::vector<VertexId> &boundaries)
    : numVertices_(a.numVertices()), embeddingDim_(embedding_dim)
{
    if (embedding_dim == 0)
        PGCN_THROW(ShapeError, "embedding dim must be positive");
    if (boundaries.size() < 2 || boundaries.front() != 0 ||
        boundaries.back() != numVertices_)
        PGCN_THROW(ConfigError,
                   "tile boundaries must span [0, |V|] inclusive");

    tiles_.resize(boundaries.size() - 1);
    std::vector<VertexId> tile_of_col(numVertices_);
    for (size_t t = 0; t + 1 < boundaries.size(); ++t) {
        if (boundaries[t + 1] < boundaries[t])
            PGCN_THROW(ConfigError, "tile boundaries must be monotone");
        tiles_[t].colBegin = boundaries[t];
        tiles_[t].colEnd = boundaries[t + 1];
        for (VertexId c = boundaries[t]; c < boundaries[t + 1]; ++c)
            tile_of_col[c] = static_cast<VertexId>(t);
    }
    buildTiles(a, tile_of_col);
}

void
TiledSpmm::buildTiles(const Csr &a,
                      const std::vector<VertexId> &tile_of_col)
{
    // Single structural pass: bucket each non-zero into its column
    // tile, tracking row boundaries as we go (rows arrive in order).
    const auto &offsets = a.rowOffsets();
    const auto &cols = a.cols();
    const auto &vals = a.vals();
    for (VertexId u = 0; u < numVertices_; ++u) {
        for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
            Tile &tile = tiles_[tile_of_col[cols[e]]];
            if (tile.rowIds.empty() || tile.rowIds.back() != u) {
                tile.rowIds.push_back(u);
                tile.rowOffsets.push_back(tile.cols.size());
            }
            tile.cols.push_back(cols[e]);
            tile.vals.push_back(vals[e]);
        }
    }
    for (Tile &tile : tiles_)
        tile.rowOffsets.push_back(tile.cols.size());
}

void
TiledSpmm::apply(const DenseMatrix &h_in, DenseMatrix &h_out,
                 parallel::ThreadPool &pool) const
{
    if (h_in.rows() != numVertices_) {
        PGCN_THROW(ShapeError, "input rows " << h_in.rows()
                                             << " != |V| = "
                                             << numVertices_);
    }
    if (h_in.cols() != embeddingDim_) {
        PGCN_THROW(ShapeError, "input width "
                                   << h_in.cols()
                                   << " != configured embedding dim "
                                   << embeddingDim_);
    }
    const uint64_t k = embeddingDim_;
    h_out.resize(numVertices_, k);

    // Tiles run sequentially so no two passes write the same row
    // concurrently; within a tile each thread takes one row-aligned,
    // NNZ-balanced chunk (prefix-sum split over the tile's row
    // offsets), so skewed tiles stay load-balanced without dynamic
    // scheduling. The inner loop is the vectorized gather-row kernel
    // accumulating across tiles.
    const auto &ops = simd::ops();
    float *out = h_out.data();
    const float *in = h_in.data();
    for (const Tile &tile : tiles_) {
        if (tile.rowIds.empty())
            continue;
        const auto bounds =
            nnzBalancedRowChunks(tile.rowOffsets, pool.numThreads());
        pool.parallelRegion([&](unsigned t) {
            ops.spmmGatherRows(out, in, k, tile.rowIds.data(),
                               tile.rowOffsets.data(), tile.cols.data(),
                               tile.vals.data(), bounds[t],
                               bounds[t + 1]);
        });
    }
}

} // namespace pgcn::kernels
