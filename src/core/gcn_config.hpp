/**
 * @file
 * GCN model description: layer count and feature dimensions. The
 * paper's characterization uses a three-layer GCN whose hidden
 * dimension is swept from 8 to 256 in powers of two.
 */
#ifndef PGCN_CORE_GCN_CONFIG_HPP
#define PGCN_CORE_GCN_CONFIG_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace pgcn::core {

/** Input/output feature dimensions of one GCN layer. */
struct LayerDims
{
    uint64_t inDim;
    uint64_t outDim;
};

/**
 * Order of the two matrix products inside one layer. The paper's
 * Eq. (1) writes sigma(A H W); evaluating (A H) W aggregates at the
 * *input* dimension, while the PyTorch-Geometric GCNConv the paper
 * profiles computes A (H W), aggregating at the *output* dimension.
 * Numerically identical (associativity); architecturally different —
 * the SpMM runs at a different K.
 */
enum class LayerOrder
{
    TransformThenAggregate, ///< A (H W): SpMM at K_out (PyG default)
    AggregateThenTransform, ///< (A H) W: SpMM at K_in (paper Eq. 1)
};

/** A GCN model: input -> (numLayers - 1) hidden layers -> output. */
struct GcnModelConfig
{
    uint64_t inputDim = 128;
    uint64_t hiddenDim = 64;
    uint64_t outputDim = 40;
    unsigned numLayers = 3;
    LayerOrder order = LayerOrder::TransformThenAggregate;

    /** Feature dimension the SpMM of layer @p dims runs at. */
    uint64_t
    spmmDim(const LayerDims &dims) const
    {
        return order == LayerOrder::TransformThenAggregate
                   ? dims.outDim
                   : dims.inDim;
    }

    /**
     * Per-layer dimensions: layer 1 maps input -> hidden, middle
     * layers hidden -> hidden, the last layer hidden -> output.
     */
    std::vector<LayerDims>
    layerDims() const
    {
        if (numLayers < 1)
            PGCN_THROW(ConfigError, "GCN needs at least one layer");
        std::vector<LayerDims> dims;
        dims.reserve(numLayers);
        for (unsigned l = 0; l < numLayers; ++l) {
            const uint64_t in = l == 0 ? inputDim : hiddenDim;
            const uint64_t out =
                l + 1 == numLayers ? outputDim : hiddenDim;
            dims.push_back(LayerDims{in, out});
        }
        return dims;
    }

    /** Widest feature dimension across all layers. */
    uint64_t
    maxDim() const
    {
        uint64_t widest = 0;
        for (const auto &d : layerDims()) {
            widest = std::max({widest, d.inDim, d.outDim});
        }
        return widest;
    }

    /** The paper's sweep values for the hidden dimension. */
    static const std::vector<uint64_t> &
    embeddingSweep()
    {
        static const std::vector<uint64_t> sweep{8, 16, 32, 64, 128, 256};
        return sweep;
    }
};

} // namespace pgcn::core

#endif // PGCN_CORE_GCN_CONFIG_HPP
