#include "core/platforms.hpp"

#include <algorithm>

#include "gpu/timing.hpp"
#include "model/spmm_model.hpp"
#include "xeon/timing.hpp"

namespace pgcn::core {

using graph::DatasetInfo;
using model::SpmmWorkload;

namespace {

/**
 * Per-layer SpMM workload: the aggregation dimension depends on the
 * model's layer order (A (H W) aggregates at K_out, (A H) W at K_in).
 */
SpmmWorkload
layerSpmm(const DatasetInfo &dataset, const GcnModelConfig &model,
          const LayerDims &dims)
{
    return SpmmWorkload{dataset.numVertices, dataset.numEdges,
                        model.spmmDim(dims)};
}

} // namespace

// ---------------------------------------------------------------- Xeon

XeonPlatform::XeonPlatform(xeon::XeonConfig cfg, unsigned threads)
    : cfg_(cfg),
      threads_(threads == 0 ? cfg.physicalCores() : threads)
{
    cfg_.validate();
}

KernelBreakdown
XeonPlatform::timeGcn(const DatasetInfo &dataset,
                      const GcnModelConfig &model) const
{
    KernelBreakdown bd;
    const auto layers = model.layerDims();
    for (size_t l = 0; l < layers.size(); ++l) {
        bd.denseNs += xeon::denseMmTimeNs(cfg_, dataset.numVertices,
                                          layers[l].inDim,
                                          layers[l].outDim, threads_);
        bd.spmmNs += xeon::spmmTimeNs(
            cfg_, layerSpmm(dataset, model, layers[l]), threads_,
            dataset.profile == graph::DegreeProfile::Skewed);
        if (l + 1 < layers.size()) {
            bd.glueNs += xeon::glueTimeNs(cfg_, dataset.numVertices,
                                          layers[l].outDim, threads_);
        }
    }
    return bd;
}

double
XeonPlatform::spmmOnlyNs(const DatasetInfo &dataset,
                         const GcnModelConfig &model) const
{
    double total = 0.0;
    for (const auto &dims : model.layerDims()) {
        total += xeon::spmmTimeNs(
            cfg_, layerSpmm(dataset, model, dims), threads_,
            dataset.profile == graph::DegreeProfile::Skewed);
    }
    return total;
}

// ----------------------------------------------------------------- GPU

GpuPlatform::GpuPlatform(gpu::GpuConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
}

bool
GpuPlatform::fits(const DatasetInfo &dataset,
                  const GcnModelConfig &model) const
{
    return gpu::fitsInMemory(cfg_, dataset.numVertices, dataset.numEdges,
                             model.maxDim());
}

KernelBreakdown
GpuPlatform::timeGcn(const DatasetInfo &dataset,
                     const GcnModelConfig &model) const
{
    KernelBreakdown bd;
    const auto layers = model.layerDims();
    const bool resident = fits(dataset, model);

    if (resident) {
        // One-time offload of adjacency + input features (Fig. 4:
        // the dominant cost for small K).
        bd.offloadNs += gpu::offloadTimeNs(cfg_, dataset.numVertices,
                                           dataset.numEdges,
                                           model.inputDim);
    }

    for (size_t l = 0; l < layers.size(); ++l) {
        if (!resident) {
            // Layer-wise full-neighbourhood sampling on the host,
            // then staging the gathered batch over PCIe.
            bd.samplingNs += gpu::samplingTimeNs(cfg_, dataset.numEdges,
                                                 layers[l].inDim);
            bd.offloadNs += static_cast<double>(dataset.numVertices) *
                                static_cast<double>(layers[l].inDim) *
                                4.0 / cfg_.pcieBandwidthGBps +
                            cfg_.transferOverheadNs;
        }
        bd.denseNs += gpu::denseMmTimeNs(cfg_, dataset.numVertices,
                                         layers[l].inDim,
                                         layers[l].outDim);
        bd.spmmNs += gpu::spmmTimeNs(cfg_, layerSpmm(dataset, model, layers[l]));
        if (l + 1 < layers.size()) {
            bd.glueNs += gpu::glueTimeNs(cfg_, dataset.numVertices,
                                         layers[l].outDim);
        }
    }
    return bd;
}

double
GpuPlatform::spmmOnlyNs(const DatasetInfo &dataset,
                        const GcnModelConfig &model) const
{
    double total = 0.0;
    for (const auto &dims : model.layerDims())
        total += gpu::spmmTimeNs(cfg_, layerSpmm(dataset, model, dims));
    return total;
}

// --------------------------------------------------------------- PIUMA

PiumaPlatform::PiumaPlatform(piuma::PiumaConfig cfg,
                             piuma::NodeModelParams params)
    : cfg_(cfg), params_(params)
{
    cfg_.validate();
}

KernelBreakdown
PiumaPlatform::timeGcn(const DatasetInfo &dataset,
                       const GcnModelConfig &model) const
{
    KernelBreakdown bd;
    const auto layers = model.layerDims();
    for (size_t l = 0; l < layers.size(); ++l) {
        double dense = piuma::denseMmTimeNs(cfg_, dataset.numVertices,
                                            layers[l].inDim,
                                            layers[l].outDim, params_);
        double spmm = piuma::spmmTimeNs(
            cfg_, layerSpmm(dataset, model, layers[l]), params_);
        if (params_.fuseAggregationUpdate) {
            // Graphite-style fusion: the intermediate H*W never
            // round-trips DRAM. Half the saved traffic was the dense
            // kernel's write, half the SpMM's read.
            const double saved = piuma::fusionSavingsNs(
                cfg_, dataset.numVertices, layers[l].outDim, params_);
            dense = std::max(params_.kernelLaunchOverheadNs,
                             dense - saved / 2.0);
            spmm = std::max(params_.kernelLaunchOverheadNs,
                            spmm - saved / 2.0);
        }
        bd.denseNs += dense;
        bd.spmmNs += spmm;
        if (l + 1 < layers.size()) {
            bd.glueNs += piuma::glueTimeNs(cfg_, dataset.numVertices,
                                           layers[l].outDim, params_);
        }
    }
    return bd;
}

double
PiumaPlatform::spmmOnlyNs(const DatasetInfo &dataset,
                          const GcnModelConfig &model) const
{
    double total = 0.0;
    for (const auto &dims : model.layerDims())
        total += piuma::spmmTimeNs(cfg_, layerSpmm(dataset, model, dims),
                                   params_);
    return total;
}

} // namespace pgcn::core
