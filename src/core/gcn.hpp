/**
 * @file
 * The functional GCN inference engine: real computation on the CPU
 * kernels (SpMM + blocked GEMM + ReLU), with a measured wall-clock
 * breakdown in the paper's categories. This is the executable heart
 * of the library — what a downstream user runs on their own graph —
 * while the platform models in platforms.hpp project the same
 * workload onto the paper's three systems.
 *
 * Layer semantics follow the PyTorch-Geometric GCNConv the paper
 * profiles: transform-then-aggregate, H' = A~ (H W), with a ReLU
 * between layers (none after the last).
 */
#ifndef PGCN_CORE_GCN_HPP
#define PGCN_CORE_GCN_HPP

#include <vector>

#include "core/breakdown.hpp"
#include "core/gcn_config.hpp"
#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dense_matrix.hpp"

namespace pgcn::core {

/** Which functional SpMM implementation the executor uses. */
enum class CpuSpmmKind
{
    VertexParallel, ///< the paper's optimized CPU baseline
    EdgeParallel,   ///< Algorithm 2 (atomics; slower on CPU)
    NnzBalanced,    ///< static equal-work chunks, no atomics
    Fused,          ///< fused SpMM->GEMM tiles (falls back to
                    ///< NnzBalanced when the layer order puts the
                    ///< aggregation after the transform)
};

/**
 * A GCN with materialised weights, runnable on any graph whose
 * adjacency is given as a (normalised) CSR.
 */
class GcnModel
{
  public:
    /**
     * Create a model with deterministic random weights.
     *
     * @param config Layer dimensions.
     * @param seed Weight-initialisation seed.
     */
    GcnModel(const GcnModelConfig &config, uint64_t seed = 7);

    /** The model configuration. */
    const GcnModelConfig &config() const { return config_; }

    /** Weight matrix of layer @p layer (inDim x outDim). */
    const tensor::DenseMatrix &weights(unsigned layer) const;

    /**
     * Run inference: features -> logits.
     *
     * @param adjacency Normalised adjacency A~ (|V| x |V|).
     * @param features Input features (|V| x inputDim).
     * @param pool Thread pool for the parallel kernels.
     * @param spmm_kind Which SpMM implementation to use.
     * @param breakdown_out If non-null, receives the measured
     *        wall-clock breakdown (SpMM / Dense MM / Glue).
     * @return Output logits (|V| x outputDim).
     */
    tensor::DenseMatrix infer(const graph::Csr &adjacency,
                              const tensor::DenseMatrix &features,
                              parallel::ThreadPool &pool,
                              CpuSpmmKind spmm_kind =
                                  CpuSpmmKind::VertexParallel,
                              KernelBreakdown *breakdown_out =
                                  nullptr) const;

  private:
    GcnModelConfig config_;
    std::vector<tensor::DenseMatrix> weights_;
};

} // namespace pgcn::core

#endif // PGCN_CORE_GCN_HPP
