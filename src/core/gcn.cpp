#include "core/gcn.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "kernels/spmm.hpp"
#include "tensor/dense_mm.hpp"

namespace pgcn::core {

using tensor::DenseMatrix;

namespace {

double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

GcnModel::GcnModel(const GcnModelConfig &config, uint64_t seed)
    : config_(config)
{
    const auto dims = config_.layerDims();
    weights_.reserve(dims.size());
    for (size_t l = 0; l < dims.size(); ++l) {
        DenseMatrix w(dims[l].inDim, dims[l].outDim);
        // Glorot-style scale keeps activations bounded through layers.
        const float scale =
            1.0f / std::sqrt(static_cast<float>(dims[l].inDim));
        w.fillRandom(seed + l, scale);
        weights_.push_back(std::move(w));
    }
}

const DenseMatrix &
GcnModel::weights(unsigned layer) const
{
    PGCN_ASSERT(layer < weights_.size(),
                "layer " << layer << " out of " << weights_.size());
    return weights_[layer];
}

DenseMatrix
GcnModel::infer(const graph::Csr &adjacency, const DenseMatrix &features,
                parallel::ThreadPool &pool, CpuSpmmKind spmm_kind,
                KernelBreakdown *breakdown_out) const
{
    if (features.rows() != adjacency.numVertices()) {
        PGCN_THROW(ShapeError, "feature rows "
                                   << features.rows() << " != |V| = "
                                   << adjacency.numVertices());
    }
    if (features.cols() != config_.inputDim) {
        PGCN_THROW(ShapeError, "feature dim "
                                   << features.cols() << " != input dim "
                                   << config_.inputDim);
    }

    KernelBreakdown breakdown;
    DenseMatrix h = features;
    auto run_spmm = [&](const DenseMatrix &in, DenseMatrix &out) {
        const double t0 = nowNs();
        if (spmm_kind == CpuSpmmKind::VertexParallel) {
            kernels::spmmVertexParallel(adjacency, in, out, pool);
        } else {
            kernels::spmmEdgeParallel(adjacency, in, out, pool);
        }
        breakdown.spmmNs += nowNs() - t0;
    };
    auto run_dense = [&](const DenseMatrix &in, const DenseMatrix &w,
                         DenseMatrix &out) {
        const double t0 = nowNs();
        tensor::denseMmBlocked(in, w, out);
        breakdown.denseNs += nowNs() - t0;
    };

    for (size_t l = 0; l < weights_.size(); ++l) {
        DenseMatrix result;
        if (config_.order == LayerOrder::TransformThenAggregate) {
            // A (H W): update first, aggregate at K_out.
            DenseMatrix hw;
            run_dense(h, weights_[l], hw);
            run_spmm(hw, result);
        } else {
            // (A H) W: the paper's Eq. 1 order, aggregate at K_in.
            DenseMatrix ah;
            run_spmm(h, ah);
            run_dense(ah, weights_[l], result);
        }

        // Glue: activation between layers.
        const double t0 = nowNs();
        if (l + 1 < weights_.size())
            tensor::reluInPlace(result);
        breakdown.glueNs += nowNs() - t0;

        h = std::move(result);
    }

    if (breakdown_out != nullptr)
        *breakdown_out = breakdown;
    return h;
}

} // namespace pgcn::core
