#include "core/gcn.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "kernels/fused_gcn.hpp"
#include "kernels/spmm.hpp"
#include "tensor/dense_mm.hpp"

namespace pgcn::core {

using tensor::DenseMatrix;

namespace {

double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

GcnModel::GcnModel(const GcnModelConfig &config, uint64_t seed)
    : config_(config)
{
    const auto dims = config_.layerDims();
    weights_.reserve(dims.size());
    for (size_t l = 0; l < dims.size(); ++l) {
        DenseMatrix w(dims[l].inDim, dims[l].outDim);
        // Glorot-style scale keeps activations bounded through layers.
        const float scale =
            1.0f / std::sqrt(static_cast<float>(dims[l].inDim));
        w.fillRandom(seed + l, scale);
        weights_.push_back(std::move(w));
    }
}

const DenseMatrix &
GcnModel::weights(unsigned layer) const
{
    PGCN_ASSERT(layer < weights_.size(),
                "layer " << layer << " out of " << weights_.size());
    return weights_[layer];
}

DenseMatrix
GcnModel::infer(const graph::Csr &adjacency, const DenseMatrix &features,
                parallel::ThreadPool &pool, CpuSpmmKind spmm_kind,
                KernelBreakdown *breakdown_out) const
{
    if (features.rows() != adjacency.numVertices()) {
        PGCN_THROW(ShapeError, "feature rows "
                                   << features.rows() << " != |V| = "
                                   << adjacency.numVertices());
    }
    if (features.cols() != config_.inputDim) {
        PGCN_THROW(ShapeError, "feature dim "
                                   << features.cols() << " != input dim "
                                   << config_.inputDim);
    }

    KernelBreakdown breakdown;
    DenseMatrix h = features;
    auto run_spmm = [&](const DenseMatrix &in, DenseMatrix &out) {
        const double t0 = nowNs();
        switch (spmm_kind) {
        case CpuSpmmKind::VertexParallel:
            kernels::spmmVertexParallel(adjacency, in, out, pool);
            break;
        case CpuSpmmKind::EdgeParallel:
            kernels::spmmEdgeParallel(adjacency, in, out, pool);
            break;
        case CpuSpmmKind::NnzBalanced:
        case CpuSpmmKind::Fused:
            kernels::spmmNnzBalanced(adjacency, in, out, pool);
            break;
        }
        breakdown.spmmNs += nowNs() - t0;
    };
    auto run_dense = [&](const DenseMatrix &in, const DenseMatrix &w,
                         DenseMatrix &out) {
        const double t0 = nowNs();
        tensor::denseMmBlocked(in, w, out);
        breakdown.denseNs += nowNs() - t0;
    };
    // The fused path times one combined pass; split it between the
    // SpMM and Dense MM buckets proportional to flop counts so the
    // breakdown schema stays comparable across kinds.
    auto run_fused = [&](const DenseMatrix &in, const DenseMatrix &w,
                         DenseMatrix &out, bool relu) {
        const double t0 = nowNs();
        kernels::fusedSpmmGemm(adjacency, in, w, out, pool, relu);
        const double elapsed = nowNs() - t0;
        const double spmm_flops =
            2.0 * static_cast<double>(adjacency.numEdges()) *
            static_cast<double>(in.cols());
        const double dense_flops =
            2.0 * static_cast<double>(in.rows()) *
            static_cast<double>(w.rows()) *
            static_cast<double>(w.cols());
        const double total = spmm_flops + dense_flops;
        const double frac = total > 0 ? spmm_flops / total : 0.5;
        breakdown.spmmNs += elapsed * frac;
        breakdown.denseNs += elapsed * (1.0 - frac);
    };

    // Ping-pong buffers hoisted out of the layer loop: each layer
    // reshapes into existing capacity instead of allocating afresh.
    DenseMatrix mid;
    DenseMatrix result;
    const bool fuse =
        spmm_kind == CpuSpmmKind::Fused &&
        config_.order == LayerOrder::AggregateThenTransform;
    for (size_t l = 0; l < weights_.size(); ++l) {
        const bool inner = l + 1 < weights_.size();
        if (fuse) {
            // act((A H) W) in one pass; the aggregate tile never
            // leaves cache and ReLU runs on hot output rows.
            run_fused(h, weights_[l], result, inner);
        } else if (config_.order == LayerOrder::TransformThenAggregate) {
            // A (H W): update first, aggregate at K_out.
            run_dense(h, weights_[l], mid);
            run_spmm(mid, result);
        } else {
            // (A H) W: the paper's Eq. 1 order, aggregate at K_in.
            run_spmm(h, mid);
            run_dense(mid, weights_[l], result);
        }

        // Glue: activation between layers (fused path already did it).
        const double t0 = nowNs();
        if (inner && !fuse)
            tensor::reluInPlace(result);
        breakdown.glueNs += nowNs() - t0;

        std::swap(h, result);
    }

    if (breakdown_out != nullptr)
        *breakdown_out = breakdown;
    return h;
}

} // namespace pgcn::core
