/**
 * @file
 * Execution-time breakdown of a GCN inference, using the categories
 * of the paper's Figs. 3, 4 and 10: SpMM (sparse aggregation), Dense
 * MM (update), Glue (activations + framework), plus the GPU-specific
 * Offload (PCIe) and Sampling (host-side neighbourhood expansion).
 */
#ifndef PGCN_CORE_BREAKDOWN_HPP
#define PGCN_CORE_BREAKDOWN_HPP

#include <string>

namespace pgcn::core {

/** Nanoseconds attributed to each execution category. */
struct KernelBreakdown
{
    double spmmNs = 0.0;
    double denseNs = 0.0;
    double glueNs = 0.0;
    double offloadNs = 0.0;
    double samplingNs = 0.0;

    /** Total execution time. */
    double
    totalNs() const
    {
        return spmmNs + denseNs + glueNs + offloadNs + samplingNs;
    }

    /** Fraction of total spent in SpMM (0 if total is 0). */
    double
    spmmFraction() const
    {
        const double t = totalNs();
        return t > 0 ? spmmNs / t : 0.0;
    }

    /** Fraction of total spent in Dense MM. */
    double
    denseFraction() const
    {
        const double t = totalNs();
        return t > 0 ? denseNs / t : 0.0;
    }

    /** Fraction of total spent in Glue. */
    double
    glueFraction() const
    {
        const double t = totalNs();
        return t > 0 ? glueNs / t : 0.0;
    }

    /** Fraction of total spent offloading over PCIe. */
    double
    offloadFraction() const
    {
        const double t = totalNs();
        return t > 0 ? offloadNs / t : 0.0;
    }

    /** Fraction of total spent sampling on the host. */
    double
    samplingFraction() const
    {
        const double t = totalNs();
        return t > 0 ? samplingNs / t : 0.0;
    }

    KernelBreakdown &
    operator+=(const KernelBreakdown &other)
    {
        spmmNs += other.spmmNs;
        denseNs += other.denseNs;
        glueNs += other.glueNs;
        offloadNs += other.offloadNs;
        samplingNs += other.samplingNs;
        return *this;
    }

    friend KernelBreakdown
    operator+(KernelBreakdown a, const KernelBreakdown &b)
    {
        a += b;
        return a;
    }
};

} // namespace pgcn::core

#endif // PGCN_CORE_BREAKDOWN_HPP
