/**
 * @file
 * Platform models: project a GCN workload (dataset metadata + model
 * config) onto the paper's three systems and return the Figs. 3/4/10
 * execution-time breakdown. These run at full Table-I scale — no
 * proxy graphs needed — because each platform module provides an
 * analytical timing model (the PIUMA one calibrated against the
 * discrete-event simulator).
 */
#ifndef PGCN_CORE_PLATFORMS_HPP
#define PGCN_CORE_PLATFORMS_HPP

#include <string>

#include "core/breakdown.hpp"
#include "core/gcn_config.hpp"
#include "gpu/config.hpp"
#include "graph/datasets.hpp"
#include "piuma/config.hpp"
#include "piuma/node_model.hpp"
#include "xeon/config.hpp"

namespace pgcn::core {

/** Abstract platform: names itself and times a GCN inference. */
class Platform
{
  public:
    virtual ~Platform() = default;

    /** Human-readable platform name for reports. */
    virtual std::string name() const = 0;

    /**
     * Time one full GCN inference over @p dataset.
     *
     * @param dataset Graph metadata (published |V|/|E|).
     * @param model Layer dimensions.
     */
    virtual KernelBreakdown timeGcn(const graph::DatasetInfo &dataset,
                                    const GcnModelConfig &model) const = 0;

    /**
     * Time only the SpMM kernels of the inference (the Fig. 9
     * diamonds).
     */
    virtual double spmmOnlyNs(const graph::DatasetInfo &dataset,
                              const GcnModelConfig &model) const = 0;
};

/** The dual-socket Xeon baseline (Fig. 3). */
class XeonPlatform : public Platform
{
  public:
    /**
     * @param cfg Machine description.
     * @param threads Worker threads; defaults to all physical cores,
     *        where the bandwidth curve peaks.
     */
    explicit XeonPlatform(xeon::XeonConfig cfg =
                              xeon::XeonConfig::platinum8380(),
                          unsigned threads = 0);

    std::string name() const override { return "xeon"; }
    KernelBreakdown timeGcn(const graph::DatasetInfo &dataset,
                            const GcnModelConfig &model) const override;
    double spmmOnlyNs(const graph::DatasetInfo &dataset,
                      const GcnModelConfig &model) const override;

    /** The configuration in use. */
    const xeon::XeonConfig &config() const { return cfg_; }

  private:
    xeon::XeonConfig cfg_;
    unsigned threads_;
};

/** The A100 GPU comparison system (Fig. 4). */
class GpuPlatform : public Platform
{
  public:
    explicit GpuPlatform(gpu::GpuConfig cfg = gpu::GpuConfig::a100_40gb());

    std::string name() const override { return "a100"; }
    KernelBreakdown timeGcn(const graph::DatasetInfo &dataset,
                            const GcnModelConfig &model) const override;
    double spmmOnlyNs(const graph::DatasetInfo &dataset,
                      const GcnModelConfig &model) const override;

    /** Whether @p dataset fits in device memory for @p model. */
    bool fits(const graph::DatasetInfo &dataset,
              const GcnModelConfig &model) const;

    /** The configuration in use. */
    const gpu::GpuConfig &config() const { return cfg_; }

  private:
    gpu::GpuConfig cfg_;
};

/** A PIUMA node (Fig. 10). */
class PiumaPlatform : public Platform
{
  public:
    explicit PiumaPlatform(piuma::PiumaConfig cfg =
                               piuma::PiumaConfig::node(),
                           piuma::NodeModelParams params = {});

    std::string name() const override { return "piuma"; }
    KernelBreakdown timeGcn(const graph::DatasetInfo &dataset,
                            const GcnModelConfig &model) const override;
    double spmmOnlyNs(const graph::DatasetInfo &dataset,
                      const GcnModelConfig &model) const override;

    /** The configuration in use. */
    const piuma::PiumaConfig &config() const { return cfg_; }

  private:
    piuma::PiumaConfig cfg_;
    piuma::NodeModelParams params_;
};

} // namespace pgcn::core

#endif // PGCN_CORE_PLATFORMS_HPP
