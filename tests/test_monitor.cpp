/**
 * @file
 * Tests for the observability layer: bucketed timelines with shared
 * fold geometry, the MonitorHub stall-window/occupancy roll-up, the
 * engine's critical-path tracking on hand-built event graphs, and the
 * two contracts the feature rests on — attaching a monitor never
 * changes simulated results (bit-identity against the determinism
 * goldens), and the stall-attribution taxonomy sums exactly to the
 * per-site stall counters.
 */
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/monitor.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::sim;

// ---------------------------------------------------------- Timeline

TEST(Timeline, AccumulatesSpansIntoBuckets)
{
    TimelineGeometry geo; // 64 buckets x 64 ns
    Timeline t(&geo);
    t.addSpan(0.0, 10.0);
    t.addSpan(70.0, 90.0);
    t.sync();
    EXPECT_DOUBLE_EQ(t.total(), 30.0);
    EXPECT_DOUBLE_EQ(t.bins()[0], 10.0);
    EXPECT_DOUBLE_EQ(t.bins()[1], 20.0);
}

TEST(Timeline, SpanStraddlingBucketsSplits)
{
    TimelineGeometry geo;
    Timeline t(&geo);
    t.addSpan(60.0, 70.0); // 4 ns in bucket 0, 6 ns in bucket 1
    t.sync();
    EXPECT_DOUBLE_EQ(t.bins()[0], 4.0);
    EXPECT_DOUBLE_EQ(t.bins()[1], 6.0);
}

TEST(Timeline, EmptyAndNegativeSpansIgnored)
{
    TimelineGeometry geo;
    Timeline t(&geo);
    t.addSpan(10.0, 10.0);
    t.addSpan(10.0, 5.0);
    EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(Timeline, FoldsWhenSpanPassesCapacity)
{
    TimelineGeometry geo; // capacity 64 * 64 = 4096 ns
    Timeline t(&geo);
    t.addSpan(0.0, 64.0);      // fills bucket 0
    t.addSpan(8000.0, 8010.0); // needs >= 8192 ns of capacity
    EXPECT_EQ(geo.folds, 1u);
    EXPECT_DOUBLE_EQ(geo.width, 128.0);
    t.sync();
    EXPECT_DOUBLE_EQ(t.total(), 74.0);
    EXPECT_DOUBLE_EQ(t.bins()[0], 64.0); // survived the fold
    EXPECT_DOUBLE_EQ(t.bins()[62], 10.0); // 8000 / 128 = 62
}

TEST(Timeline, SiblingCatchesUpLazilyAfterFold)
{
    TimelineGeometry geo;
    Timeline a(&geo);
    Timeline b(&geo);
    b.addSpan(0.0, 64.0);
    a.addSpan(8000.0, 8010.0); // a triggers the fold; b lags
    b.sync();
    EXPECT_DOUBLE_EQ(b.bins()[0], 64.0);
    EXPECT_DOUBLE_EQ(b.total(), 64.0);
    EXPECT_DOUBLE_EQ(a.width(), b.width());
}

// -------------------------------------------------------- MonitorHub

TEST(MonitorHub, ReportRollsUpBusyAndStallSpans)
{
    MonitorHub hub;
    hub.beginRun(1, 1);
    hub.issueTimeline(0)->addSpan(0.0, 10.0);
    hub.issueTimeline(0)->addSpan(20.0, 30.0);
    hub.beginWait(0, 0.0);
    hub.endWait(0, StallCause::MemoryWait, 0.0, 40.0);

    OccupancyReport rep = hub.report(100.0);
    ASSERT_EQ(rep.cores.size(), 1u);
    EXPECT_DOUBLE_EQ(rep.cores[0].issueBusyNs, 20.0);
    EXPECT_DOUBLE_EQ(rep.cores[0].stallMemNs, 40.0);
    EXPECT_DOUBLE_EQ(rep.cores[0].windowNs, 40.0);
    EXPECT_DOUBLE_EQ(rep.cores[0].coveredNs, 20.0);
    EXPECT_DOUBLE_EQ(rep.issueOccupancy, 0.2);
    EXPECT_DOUBLE_EQ(rep.latencyHidingEffectiveness, 0.5);
    EXPECT_DOUBLE_EQ(rep.exposedStallNs, 20.0);
}

TEST(MonitorHub, StallWindowIsUnionOfOverlappingWaits)
{
    MonitorHub hub;
    hub.beginRun(1, 1);
    hub.beginWait(0, 10.0);
    hub.beginWait(0, 15.0); // nested: window stays open
    hub.endWait(0, StallCause::MemoryWait, 10.0, 20.0);
    hub.endWait(0, StallCause::NetworkWait, 15.0, 30.0);

    OccupancyReport rep = hub.report(100.0);
    EXPECT_DOUBLE_EQ(rep.cores[0].stallMemNs, 10.0);
    EXPECT_DOUBLE_EQ(rep.cores[0].stallNetNs, 15.0);
    // The window is [10, 30): the union, not the 25 ns thread-sum.
    EXPECT_DOUBLE_EQ(rep.cores[0].windowNs, 20.0);
}

TEST(MonitorHub, NoStallsMeansPerfectHiding)
{
    MonitorHub hub;
    hub.beginRun(2, 4);
    hub.issueTimeline(0)->addSpan(0.0, 50.0);
    OccupancyReport rep = hub.report(100.0);
    EXPECT_DOUBLE_EQ(rep.latencyHidingEffectiveness, 1.0);
    EXPECT_DOUBLE_EQ(rep.exposedStallNs, 0.0);
    // 50 busy ns over 2 cores x 4 lanes x 100 ns.
    EXPECT_DOUBLE_EQ(rep.issueOccupancy, 50.0 / 800.0);
}

TEST(MonitorHub, OpenWaitClosedAtMakespan)
{
    MonitorHub hub;
    hub.beginRun(1, 1);
    hub.beginWait(0, 60.0);
    // endWait never arrives (thread still parked at run end).
    OccupancyReport rep = hub.report(100.0);
    EXPECT_DOUBLE_EQ(rep.cores[0].windowNs, 40.0);
}

TEST(MonitorHub, CsvRowsAreSparseAndPrefixed)
{
    MonitorHub hub;
    hub.beginRun(1, 1);
    hub.issueTimeline(0)->addSpan(0.0, 10.0);
    std::ostringstream os;
    hub.writeCsv(os, 100.0, "p,");
    const std::string text = os.str();
    EXPECT_NE(text.find("p,issue,0,0,0,64,10\n"), std::string::npos);
    // Only the one non-empty bucket row for the issue timeline.
    EXPECT_EQ(text.find("issue,0,1,"), std::string::npos);
}

// ------------------------------------------------------ CriticalPath

TEST(CriticalPath, EmptyRunHasNoPath)
{
    Engine engine;
    engine.run();
    EXPECT_EQ(engine.criticalPathEvents(), 0u);
}

TEST(CriticalPath, SerialChainDepthEqualsLength)
{
    Engine engine;
    std::function<void(int)> step = [&](int remaining) {
        if (remaining > 0)
            engine.schedule(1.0,
                            [&step, remaining] { step(remaining - 1); });
    };
    step(10);
    engine.run();
    EXPECT_EQ(engine.eventsProcessed(), 10u);
    EXPECT_EQ(engine.criticalPathEvents(), 10u);
}

TEST(CriticalPath, FanOutCountsAsTwoLevels)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1.0, [&] {
        for (int i = 0; i < 8; ++i)
            engine.schedule(1.0, [&] { ++fired; });
    });
    engine.run();
    EXPECT_EQ(fired, 8);
    EXPECT_EQ(engine.eventsProcessed(), 9u);
    EXPECT_EQ(engine.criticalPathEvents(), 2u);
}

TEST(CriticalPath, DiamondJoinsAtDepthThree)
{
    // root -> {left, right} -> join (scheduled by whichever branch
    // arrives second, the DES analogue of a counter join).
    Engine engine;
    int arrived = 0;
    SimTime join_time = -1.0;
    const auto branch = [&] {
        if (++arrived == 2)
            engine.schedule(1.0, [&] { join_time = engine.now(); });
    };
    engine.schedule(1.0, [&] {
        engine.schedule(1.0, branch);
        engine.schedule(2.0, branch);
    });
    engine.run();
    EXPECT_DOUBLE_EQ(join_time, 4.0);
    EXPECT_EQ(engine.eventsProcessed(), 4u);
    EXPECT_EQ(engine.criticalPathEvents(), 3u);
}

TEST(CriticalPath, IndependentChainsDoNotExtendEachOther)
{
    // Two disjoint 5-event chains interleaved in time: the longest
    // dependency chain is still 5, whatever the dispatch interleave.
    Engine engine;
    std::function<void(int)> a = [&](int remaining) {
        if (remaining > 0)
            engine.schedule(3.0, [&a, remaining] { a(remaining - 1); });
    };
    std::function<void(int)> b = [&](int remaining) {
        if (remaining > 0)
            engine.schedule(5.0, [&b, remaining] { b(remaining - 1); });
    };
    a(5);
    b(5);
    engine.run();
    EXPECT_EQ(engine.eventsProcessed(), 10u);
    EXPECT_EQ(engine.criticalPathEvents(), 5u);
}

// --------------------------------------- monitors vs simulated result

graph::Csr
goldenGraph()
{
    return graph::normalizedAdjacency(
        graph::generateRmat(8, 2000, graph::rmatSkewed(), 99));
}

piuma::PiumaConfig
twoCores()
{
    piuma::PiumaConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

TEST(MonitorBitIdentity, DmaGoldenUnchangedWithMonitorAttached)
{
    const graph::Csr csr = goldenGraph();
    const piuma::PiumaConfig cfg = twoCores();

    const piuma::SpmmRunStats plain =
        simulateSpmm(csr, 16, cfg, piuma::SpmmAlgorithm::Dma);

    MonitorHub hub;
    SimControls controls;
    controls.monitor = &hub;
    const piuma::SpmmRunStats monitored = simulateSpmm(
        csr, 16, cfg, piuma::SpmmAlgorithm::Dma, nullptr, &controls);

    // Same golden constants test_determinism pins for this workload:
    // the monitor observed the run without perturbing it.
    EXPECT_DOUBLE_EQ(plain.makespanNs, 10712.857142857198);
    EXPECT_DOUBLE_EQ(monitored.makespanNs, plain.makespanNs);
    EXPECT_EQ(plain.simEvents, 22697u);
    EXPECT_EQ(monitored.simEvents, plain.simEvents);
    EXPECT_EQ(monitored.dmaDescriptors, plain.dmaDescriptors);
    EXPECT_EQ(monitored.nnzStallNs, plain.nnzStallNs);
    EXPECT_EQ(monitored.rowOffsetStallNs, plain.rowOffsetStallNs);
    EXPECT_EQ(monitored.dmaQueueStallNs, plain.dmaQueueStallNs);
    EXPECT_EQ(monitored.stallMemoryNs, plain.stallMemoryNs);
    EXPECT_EQ(monitored.stallNetworkNs, plain.stallNetworkNs);
    EXPECT_EQ(monitored.criticalPathEvents, plain.criticalPathEvents);

#ifndef PGCN_NO_TELEMETRY
    // Only the monitor-derived metrics may differ (off = -1 sentinel).
    EXPECT_GE(monitored.latencyHidingEffectiveness, 0.0);
    EXPECT_LE(monitored.latencyHidingEffectiveness, 1.0);
    EXPECT_GE(monitored.exposedStallNs, 0.0);
    EXPECT_DOUBLE_EQ(plain.latencyHidingEffectiveness, -1.0);
#endif
}

TEST(MonitorBitIdentity, LoopUnrolledGoldenUnchangedWithMonitor)
{
    const graph::Csr csr = goldenGraph();
    const piuma::PiumaConfig cfg = twoCores();

    MonitorHub hub;
    SimControls controls;
    controls.monitor = &hub;
    const piuma::SpmmRunStats monitored =
        simulateSpmm(csr, 8, cfg, piuma::SpmmAlgorithm::LoopUnrolled,
                     nullptr, &controls);
    EXPECT_DOUBLE_EQ(monitored.makespanNs, 7327.1428571425176);
    EXPECT_EQ(monitored.simEvents, 16987u);
}

// ------------------------------------------- taxonomy and CP metrics

TEST(StallTaxonomy, CauseSumsMatchSiteCountersExactly)
{
    const graph::Csr csr = goldenGraph();
    for (const auto alg : {piuma::SpmmAlgorithm::Dma,
                           piuma::SpmmAlgorithm::LoopUnrolled}) {
        const piuma::SpmmRunStats s =
            simulateSpmm(csr, 16, twoCores(), alg);
        // Where a thread waited (local slice vs crossed the network)
        // re-buckets what it waited for; both views total identically.
        EXPECT_DOUBLE_EQ(s.stallMemoryNs + s.stallNetworkNs,
                         s.nnzStallNs + s.rowOffsetStallNs +
                             s.featureStallNs);
        EXPECT_GE(s.stallMemoryNs, 0.0);
        EXPECT_GE(s.stallNetworkNs, 0.0);
    }
}

TEST(CriticalPathMetrics, BoundedByEventCountAndPositive)
{
    const graph::Csr csr = goldenGraph();
    const piuma::SpmmRunStats s =
        simulateSpmm(csr, 16, twoCores(), piuma::SpmmAlgorithm::Dma);
    EXPECT_GT(s.criticalPathEvents, 0u);
    EXPECT_LE(s.criticalPathEvents, s.simEvents);
    EXPECT_GE(s.criticalPathParallelism, 1.0);
}

TEST(ScalingBound, ClassifiesByHeuristicOrder)
{
    piuma::SpmmRunStats s{};
    s.criticalPathParallelism = 4.0;
    EXPECT_STREQ(piuma::scalingBoundName(s, 16), "critical-path");
    s.maxMemUtilization = 0.99; // saturation outranks the event graph
    EXPECT_STREQ(piuma::scalingBoundName(s, 16), "resource:mem");
    s.maxMemUtilization = 0.2;
    s.netUtilization = 0.9;
    EXPECT_STREQ(piuma::scalingBoundName(s, 16), "resource:net");
    s.netUtilization = 0.2;
    s.criticalPathParallelism = 64.0; // plenty of chains, nothing full
    EXPECT_STREQ(piuma::scalingBoundName(s, 16), "latency");
}

} // namespace
