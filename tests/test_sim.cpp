/**
 * @file
 * Tests for the discrete-event core: event ordering, coroutine
 * processes, delay awaitables, bandwidth resources (queueing,
 * utilisation accounting) and the bounded hand-off queue.
 */
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/queue.hpp"
#include "sim/resource.hpp"

namespace {

using namespace pgcn::sim;

TEST(Engine, EventsFireInTimeOrder)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(30.0, [&] { order.push_back(3); });
    engine.schedule(10.0, [&] { order.push_back(1); });
    engine.schedule(20.0, [&] { order.push_back(2); });
    const SimTime end = engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(end, 30.0);
}

TEST(Engine, EqualTimestampsFifo)
{
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        engine.schedule(7.0, [&order, i] { order.push_back(i); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedScheduling)
{
    Engine engine;
    SimTime inner_fired = -1;
    engine.schedule(5.0, [&] {
        engine.schedule(10.0, [&] { inner_fired = engine.now(); });
    });
    engine.run();
    EXPECT_DOUBLE_EQ(inner_fired, 15.0);
}

TEST(Engine, EventCountTracked)
{
    Engine engine;
    for (int i = 0; i < 10; ++i)
        engine.schedule(1.0 * i, [] {});
    engine.run();
    EXPECT_EQ(engine.eventsProcessed(), 10u);
}

Process
delayTwice(Engine &engine, std::vector<SimTime> &marks)
{
    co_await engine.delay(10.0);
    marks.push_back(engine.now());
    co_await engine.delay(5.0);
    marks.push_back(engine.now());
}

TEST(Process, DelaysAccumulate)
{
    Engine engine;
    std::vector<SimTime> marks;
    delayTwice(engine, marks);
    engine.run();
    ASSERT_EQ(marks.size(), 2u);
    EXPECT_DOUBLE_EQ(marks[0], 10.0);
    EXPECT_DOUBLE_EQ(marks[1], 15.0);
}

TEST(Process, ZeroDelayDoesNotSuspend)
{
    Engine engine;
    std::vector<SimTime> marks;
    [](Engine &eng, std::vector<SimTime> &out) -> Process {
        co_await eng.delay(0.0);
        out.push_back(eng.now());
    }(engine, marks);
    // Body ran to completion synchronously (no events needed).
    ASSERT_EQ(marks.size(), 1u);
    EXPECT_DOUBLE_EQ(marks[0], 0.0);
}

TEST(Resource, BackToBackRequestsQueue)
{
    Engine engine;
    BandwidthResource res(engine, 2.0); // 2 units/ns
    EXPECT_DOUBLE_EQ(res.reserve(10.0), 5.0);
    EXPECT_DOUBLE_EQ(res.reserve(10.0), 10.0); // queued behind first
    EXPECT_DOUBLE_EQ(res.busyTime(), 10.0);
    EXPECT_DOUBLE_EQ(res.totalUnits(), 20.0);
    EXPECT_EQ(res.requests(), 2u);
}

TEST(Resource, IdleGapThenRequest)
{
    Engine engine;
    BandwidthResource res(engine, 1.0);
    engine.schedule(100.0, [&] {
        EXPECT_DOUBLE_EQ(res.reserve(5.0), 105.0);
    });
    engine.run();
    EXPECT_DOUBLE_EQ(res.utilization(105.0), 5.0 / 105.0);
}

TEST(Resource, EarliestStartHonoured)
{
    Engine engine;
    BandwidthResource res(engine, 1.0);
    EXPECT_DOUBLE_EQ(res.reserve(5.0, 50.0), 55.0);
    // A later request starting "now" still queues behind it.
    EXPECT_DOUBLE_EQ(res.reserve(5.0), 60.0);
}

Process
transferProc(Engine &engine, BandwidthResource &res, double amount,
             SimTime &done)
{
    co_await res.transfer(amount);
    done = engine.now();
}

TEST(Resource, TransferAwaitsCompletion)
{
    Engine engine;
    BandwidthResource res(engine, 4.0);
    SimTime a = -1, b = -1;
    transferProc(engine, res, 40.0, a); // 10 ns
    transferProc(engine, res, 20.0, b); // +5 ns queued
    engine.run();
    EXPECT_DOUBLE_EQ(a, 10.0);
    EXPECT_DOUBLE_EQ(b, 15.0);
}

Process
producer(Engine &engine, BoundedQueue<int> &q, int count, SimTime gap)
{
    for (int i = 0; i < count; ++i) {
        co_await q.push(i);
        if (gap > 0)
            co_await engine.delay(gap);
    }
}

Process
consumer(Engine &engine, BoundedQueue<int> &q, int count, SimTime gap,
         std::vector<int> &out)
{
    for (int i = 0; i < count; ++i) {
        int v = co_await q.pop();
        out.push_back(v);
        if (gap > 0)
            co_await engine.delay(gap);
    }
}

TEST(Queue, FifoOrderPreserved)
{
    Engine engine;
    BoundedQueue<int> q(engine, 4);
    std::vector<int> out;
    producer(engine, q, 20, 1.0);
    consumer(engine, q, 20, 0.5, out);
    engine.run();
    ASSERT_EQ(out.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(Queue, FastProducerBlocksOnCapacity)
{
    Engine engine;
    BoundedQueue<int> q(engine, 2);
    std::vector<int> out;
    // Producer pushes with no delay; consumer drains slowly. The
    // bounded queue must throttle the producer, not grow unbounded.
    producer(engine, q, 10, 0.0);
    consumer(engine, q, 10, 10.0, out);
    engine.run();
    ASSERT_EQ(out.size(), 10u);
    EXPECT_LE(q.highWater(), 2u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(Queue, ConsumerWaitsForProducer)
{
    Engine engine;
    BoundedQueue<int> q(engine, 4);
    std::vector<int> out;
    SimTime consumed_at = -1;
    [](Engine &eng, BoundedQueue<int> &queue, std::vector<int> &sink,
       SimTime &at) -> Process {
        sink.push_back(co_await queue.pop());
        at = eng.now();
    }(engine, q, out, consumed_at);
    [](Engine &eng, BoundedQueue<int> &queue) -> Process {
        co_await eng.delay(42.0);
        co_await queue.push(99);
    }(engine, q);
    engine.run();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 99);
    EXPECT_DOUBLE_EQ(consumed_at, 42.0);
}

TEST(Queue, ManyProducersOneConsumer)
{
    Engine engine;
    BoundedQueue<int> q(engine, 3);
    std::vector<int> out;
    for (int p = 0; p < 8; ++p) {
        [](Engine &eng, BoundedQueue<int> &queue, int id) -> Process {
            co_await eng.delay(static_cast<SimTime>(id));
            co_await queue.push(id);
        }(engine, q, p);
    }
    consumer(engine, q, 8, 2.0, out);
    engine.run();
    EXPECT_EQ(out.size(), 8u);
    // Every producer's value arrives exactly once.
    std::vector<int> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sorted[i], i);
}

// ------------------------------------- zero-delay fast path & arenas

TEST(NowQueue, ZeroDelayFifoAfterSameTimestampFarEvents)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(5.0, [&] {
        order.push_back(0);
        // Zero-delay events land in the now queue...
        engine.schedule(0.0, [&] { order.push_back(2); });
        engine.schedule(0.0, [&] { order.push_back(3); });
        // ...while a coroutine awaiting delay(0) runs synchronously,
        // before anything queued above.
        [](Engine &eng, std::vector<int> &out) -> Process {
            co_await eng.delay(0.0);
            out.push_back(1);
        }(engine, order);
    });
    // Scheduled before run(): an earlier sequence number at the same
    // timestamp, so this far event must fire before the zero-delay
    // events created during dispatch at t=5.
    engine.schedule(5.0, [&] { order.push_back(4); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3}));
}

TEST(NowQueue, RearmingZeroDelayChainsInterleaveBreadthFirst)
{
    Engine engine;
    std::vector<int> order;
    // Three chains of zero-delay events, each step re-arming the next
    // through the now queue. FIFO dispatch means the chains interleave
    // breadth-first in schedule order, never depth-first.
    std::function<void(int, int)> step = [&](int chain, int k) {
        order.push_back(chain * 10 + k);
        if (k < 2)
            engine.schedule(0.0, [&step, chain, k] { step(chain, k + 1); });
    };
    for (int c = 0; c < 3; ++c)
        engine.schedule(0.0, [&step, c] { step(c, 0); });
    engine.run();
    EXPECT_EQ(order,
              (std::vector<int>{0, 10, 20, 1, 11, 21, 2, 12, 22}));
    EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Queue, BlockedProducersWakeInBlockOrder)
{
    Engine engine;
    BoundedQueue<int> q(engine, 1);
    std::vector<int> out;
    // Three producers, two pushes each, all blocking at t=0 on the
    // one-slot queue. Each pop must admit exactly the longest-blocked
    // producer's value.
    for (int p = 0; p < 3; ++p) {
        [](Engine &eng, BoundedQueue<int> &queue, int id) -> Process {
            (void)eng;
            co_await queue.push(id * 10);
            co_await queue.push(id * 10 + 1);
        }(engine, q, p);
    }
    consumer(engine, q, 6, 1.0, out);
    engine.run();
    // P0 buffers 0 and blocks on 1; P1 and P2 block behind it. Pops
    // then admit values in block order: 1, then P1's 10, then P2's 20
    // (P1 re-blocks with 11 before P2 re-blocks with 21).
    EXPECT_EQ(out, (std::vector<int>{0, 1, 10, 20, 11, 21}));
}

TEST(Engine, ReservedArenasNeverGrowOnResumePath)
{
    // With pre-sized arenas, a pure coroutine workload performs no
    // per-event allocation: the growth counter stays at zero across
    // tens of thousands of dispatches.
    Engine engine;
    constexpr int kAgents = 64;
    engine.reserveEvents(kAgents, kAgents);
    for (int a = 0; a < kAgents; ++a) {
        [](Engine &eng, int id) -> Process {
            for (int i = 0; i < 200; ++i)
                co_await eng.delay(1.0 + 0.25 * (id % 4));
        }(engine, a);
    }
    engine.run();
    EXPECT_EQ(engine.arenaGrowths(), 0u);
    EXPECT_EQ(engine.coroutineEvents(), 64u * 200u);

    // Sanity: the counter does count — the same workload without
    // reserveEvents() must grow the arenas at least once.
    Engine cold;
    for (int a = 0; a < kAgents; ++a) {
        [](Engine &eng, int id) -> Process {
            for (int i = 0; i < 200; ++i)
                co_await eng.delay(1.0 + 0.25 * (id % 4));
        }(cold, a);
    }
    cold.run();
    EXPECT_GT(cold.arenaGrowths(), 0u);
}

} // namespace

// ------------------------------------------------ stress & property

namespace {

using namespace pgcn::sim;

TEST(EngineProperty, RandomScheduleRunsInOrder)
{
    // Schedule events at pseudo-random times; observed firing times
    // must be non-decreasing and the count exact.
    Engine engine;
    uint64_t state = 77;
    int fired = 0;
    SimTime last = -1.0;
    for (int i = 0; i < 5000; ++i) {
        const double when =
            static_cast<double>(pgcn::splitMix64(state) % 100000) / 10.0;
        engine.schedule(when, [&, when] {
            EXPECT_GE(engine.now(), last);
            EXPECT_DOUBLE_EQ(engine.now(), when);
            last = engine.now();
            ++fired;
        });
    }
    engine.run();
    EXPECT_EQ(fired, 5000);
}

TEST(ResourceProperty, BusyTimeNeverExceedsMakespan)
{
    Engine engine;
    BandwidthResource res(engine, 3.0);
    uint64_t state = 5;
    for (int i = 0; i < 200; ++i) {
        const double delay =
            static_cast<double>(pgcn::splitMix64(state) % 1000);
        const double amount =
            static_cast<double>(pgcn::splitMix64(state) % 500 + 1);
        engine.schedule(delay, [&res, amount] { res.reserve(amount); });
    }
    const SimTime end = engine.run();
    EXPECT_LE(res.busyTime(), std::max(end, res.nextFree()) + 1e-9);
    EXPECT_EQ(res.requests(), 200u);
}

TEST(QueueProperty, InterleavedProducersConsumersConserveItems)
{
    Engine engine;
    BoundedQueue<int> q(engine, 5);
    std::vector<int> seen;
    constexpr int kItems = 300;
    // Three producers with different pacing, one consumer.
    for (int p = 0; p < 3; ++p) {
        [](Engine &eng, BoundedQueue<int> &queue, int id) -> Process {
            for (int i = 0; i < kItems / 3; ++i) {
                co_await queue.push(id * 1000 + i);
                co_await eng.delay(static_cast<SimTime>(1 + id));
            }
        }(engine, q, p);
    }
    [](Engine &eng, BoundedQueue<int> &queue,
       std::vector<int> &sink) -> Process {
        for (int i = 0; i < kItems; ++i) {
            sink.push_back(co_await queue.pop());
            co_await eng.delay(0.5);
        }
    }(engine, q, seen);
    engine.run();
    ASSERT_EQ(seen.size(), static_cast<size_t>(kItems));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end())
        << "duplicate delivery";
    EXPECT_LE(q.highWater(), 5u);
}

TEST(QueueProperty, PerProducerOrderPreserved)
{
    Engine engine;
    BoundedQueue<int> q(engine, 2);
    std::vector<int> seen;
    [](Engine &, BoundedQueue<int> &queue) -> Process {
        for (int i = 0; i < 50; ++i)
            co_await queue.push(i);
    }(engine, q);
    [](Engine &eng, BoundedQueue<int> &queue,
       std::vector<int> &sink) -> Process {
        for (int i = 0; i < 50; ++i) {
            sink.push_back(co_await queue.pop());
            co_await eng.delay(1.0);
        }
    }(engine, q, seen);
    engine.run();
    ASSERT_EQ(seen.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(seen[i], i);
}

} // namespace
