/**
 * @file
 * Tests for the Xeon timing model: the bandwidth-vs-threads curve of
 * Fig. 8 (left), the cache-reuse SpMM correction, and the qualitative
 * CPU findings of Fig. 3 (SpMM fraction grows with scale, density and
 * embedding dimension).
 */
#include <gtest/gtest.h>

#include "model/spmm_model.hpp"
#include "xeon/config.hpp"
#include "xeon/timing.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::xeon;

TEST(XeonConfig, Platinum8380Shape)
{
    const auto cfg = XeonConfig::platinum8380();
    EXPECT_EQ(cfg.physicalCores(), 80u);
    EXPECT_EQ(cfg.logicalCores(), 160u);
    // AVX-512, 2 FMA units: 2.3 GHz * 2 * 16 * 2 = 147.2 GF/core.
    EXPECT_NEAR(cfg.peakCoreGflops(), 147.2, 1e-9);
}

TEST(Bandwidth, RampsLinearlyAtLowThreadCounts)
{
    const auto cfg = XeonConfig::platinum8380();
    const double one = streamBandwidth(cfg, 2); // one per socket
    const double four = streamBandwidth(cfg, 8);
    EXPECT_NEAR(four / one, 4.0, 1e-9);
}

TEST(Bandwidth, SaturatesAtSocketPeak)
{
    const auto cfg = XeonConfig::platinum8380();
    const double at40 = streamBandwidth(cfg, 40);
    const double at80 = streamBandwidth(cfg, 80);
    EXPECT_DOUBLE_EQ(at80, cfg.peakBandwidth());
    EXPECT_LE(at40, at80);
}

TEST(Bandwidth, HyperThreadingDegrades)
{
    // The paper's Fig. 8 (left): past 80 threads the measured
    // bandwidth *decreases*.
    const auto cfg = XeonConfig::platinum8380();
    const double physical = streamBandwidth(cfg, 80);
    const double oversub = streamBandwidth(cfg, 160);
    EXPECT_LT(oversub, physical);
    EXPECT_NEAR(oversub, physical * (1.0 - cfg.hyperThreadPenalty), 1e-9);
}

TEST(Bandwidth, MonotoneUpToPhysical)
{
    const auto cfg = XeonConfig::platinum8380();
    double prev = 0.0;
    for (unsigned t = 1; t <= 80; t += 4) {
        const double bw = streamBandwidth(cfg, t);
        EXPECT_GE(bw, prev);
        prev = bw;
    }
}

TEST(CacheModel, SmallGraphFullyCached)
{
    const auto cfg = XeonConfig::platinum8380();
    // ddi at K=8: 4267 * 8 * 4 B = 136 KB << cache.
    EXPECT_DOUBLE_EQ(featureCacheHitRate(cfg, 4267, 8), 1.0);
}

TEST(CacheModel, LargeGraphMostlyMisses)
{
    const auto cfg = XeonConfig::platinum8380();
    // papers at K=256: 111M * 1 KiB >> cache.
    EXPECT_LT(featureCacheHitRate(cfg, 111059956, 256), 0.01);
}

TEST(CacheModel, HitRateFallsWithEmbeddingDim)
{
    // Fig. 3's mechanism: larger K evicts more rows.
    const auto cfg = XeonConfig::platinum8380();
    EXPECT_GT(featureCacheHitRate(cfg, 132534, 8),
              featureCacheHitRate(cfg, 132534, 256));
}

TEST(SpmmTraffic, CachedGraphReadsEachRowOnce)
{
    const auto cfg = XeonConfig::platinum8380();
    // Fully cached: feature traffic is the compulsory |V|*K*4 only.
    model::SpmmWorkload w{4267, 1334889, 8};
    const double traffic = spmmTrafficBytes(cfg, w);
    const double csr = 4268.0 * 8 + 1334889.0 * 8;
    const double compulsory = 4267.0 * 8 * 4;
    const double write = 4267.0 * 8 * 4;
    EXPECT_NEAR(traffic, csr + compulsory + write, 1.0);
}

TEST(SpmmTraffic, UncachedGraphApproachesModelBound)
{
    const auto cfg = XeonConfig::platinum8380();
    model::SpmmWorkload w{111059956, 1615685872, 256};
    const double traffic = spmmTrafficBytes(cfg, w);
    const auto est = model::estimateSpmm(w, 1.0, 1.0);
    EXPECT_GT(traffic, 0.95 * est.totalBytes());
    EXPECT_LE(traffic, 1.001 * est.totalBytes());
}

TEST(SpmmFraction, GrowsWithDensity)
{
    // Fig. 2: at fixed |V|, denser graphs spend a larger fraction of
    // layer time in SpMM.
    const auto cfg = XeonConfig::platinum8380();
    const uint64_t v = 1u << 18;
    const unsigned threads = 80;
    auto fraction = [&](uint64_t e) {
        model::SpmmWorkload w{v, e, 256};
        const double spmm = spmmTimeNs(cfg, w, threads);
        const double dense = denseMmTimeNs(cfg, v, 256, 256, threads);
        return spmm / (spmm + dense);
    };
    EXPECT_LT(fraction(v * 2), fraction(v * 32));
}

TEST(SpmmFraction, GrowsWithScaleAtFixedDensity)
{
    // Fig. 2: at fixed density, larger graphs are more SpMM-bound
    // (|E| = delta * |V|^2 grows quadratically; Dense MM linearly).
    const auto cfg = XeonConfig::platinum8380();
    const unsigned threads = 80;
    const double density = 1e-4;
    auto fraction = [&](uint64_t v) {
        const auto e = static_cast<uint64_t>(density * v * double(v));
        model::SpmmWorkload w{v, e, 256};
        const double spmm = spmmTimeNs(cfg, w, threads);
        const double dense = denseMmTimeNs(cfg, v, 256, 256, threads);
        return spmm / (spmm + dense);
    };
    EXPECT_LT(fraction(1u << 16), fraction(1u << 20));
}

TEST(SpmmTime, DecreasesWithThreadsUntilSaturation)
{
    const auto cfg = XeonConfig::platinum8380();
    model::SpmmWorkload w{2449029, 61859140, 256}; // products
    const double t8 = spmmTimeNs(cfg, w, 8);
    const double t80 = spmmTimeNs(cfg, w, 80);
    EXPECT_GT(t8, 2.0 * t80);
}

TEST(DenseTime, ComputeBoundAtLargeK)
{
    const auto cfg = XeonConfig::platinum8380();
    // K=256 GEMM: arithmetic intensity ~64 FLOP/B, compute bound.
    const double t = denseMmTimeNs(cfg, 1u << 20, 256, 256, 80);
    const double flop = 2.0 * (1u << 20) * 256.0 * 256.0;
    const double compute_ns =
        flop / (cfg.peakSystemGflops() * cfg.denseEfficiency);
    EXPECT_NEAR(t, compute_ns + cfg.frameworkOverheadNs,
                0.01 * compute_ns);
}

} // namespace

// ----------------------------------------------------- random walk

namespace {

using namespace pgcn::xeon;

TEST(RandomWalkModel, ScalesWithCoresUntilPhysicalLimit)
{
    const auto cfg = XeonConfig::platinum8380();
    const double r40 = randomWalkStepsPerNs(cfg, 40);
    const double r80 = randomWalkStepsPerNs(cfg, 80);
    const double r160 = randomWalkStepsPerNs(cfg, 160);
    EXPECT_NEAR(r80 / r40, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(r80, r160); // HT does not add chase capacity
}

TEST(RandomWalkModel, LatencyBound)
{
    XeonConfig slow = XeonConfig::platinum8380();
    slow.randomAccessLatencyNs *= 2.0;
    EXPECT_NEAR(randomWalkStepsPerNs(XeonConfig::platinum8380(), 80) /
                    randomWalkStepsPerNs(slow, 80),
                2.0, 1e-9);
}

} // namespace
