/**
 * @file
 * Tests for src/telemetry: registry semantics (find-or-create, stable
 * references, gauge lifecycle), the Chrome-trace exporter (golden
 * JSON, timestamp sorting, structural validity), the periodic gauge
 * sampler (Value vs Rate interpretation), the session's global clock,
 * and the instrumented SpMM path — telemetry on must not perturb the
 * simulated result, and the emitted trace must be a well-formed,
 * bit-reproducible Chrome-trace file with matched B/E span pairs.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/engine.hpp"
#include "telemetry/registry.hpp"
#include "test_paths.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/session.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace pgcn;
using telemetry::GaugeKind;
using telemetry::Registry;
using telemetry::Sampler;
using telemetry::Session;
using telemetry::TraceWriter;

// ---------------------------------------------------------------------
// Trace-validation helpers.
// ---------------------------------------------------------------------

/**
 * Minimal recursive-descent JSON syntax checker — enough to assert
 * "Perfetto will not reject this file", without pulling in a JSON
 * dependency.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return p_ == end_;
    }

  private:
    const char *p_;
    const char *end_;

    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *s)
    {
        for (; *s; ++s, ++p_)
            if (p_ == end_ || *p_ != *s)
                return false;
        return true;
    }

    bool
    string()
    {
        if (p_ == end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    return false;
            }
            ++p_;
        }
        if (p_ == end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool
    number()
    {
        const char *start = p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
            ++p_;
        bool digits = false;
        while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                              *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                              *p_ == '+'))
            digits = true, ++p_;
        return digits && p_ != start;
    }

    bool
    members(char close, bool with_keys)
    {
        skipWs();
        if (p_ != end_ && *p_ == close) {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            if (with_keys) {
                if (!string())
                    return false;
                skipWs();
                if (p_ == end_ || *p_ != ':')
                    return false;
                ++p_;
            }
            if (!value())
                return false;
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == close) {
                ++p_;
                return true;
            }
            if (*p_ != ',')
                return false;
            ++p_;
        }
    }

    bool
    value()
    {
        skipWs();
        if (p_ == end_)
            return false;
        switch (*p_) {
        case '{':
            ++p_;
            return members('}', true);
        case '[':
            ++p_;
            return members(']', false);
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }
};

/** One event extracted from a serialised trace line. */
struct ParsedEvent
{
    std::string name;
    double ts = 0.0;
    uint32_t tid = 0;
    char phase = '?';
};

/**
 * Extract events from the writer's one-event-per-line output. Names
 * containing escaped quotes are not handled; the simulator never
 * emits any.
 */
std::vector<ParsedEvent>
parseEvents(const std::string &json)
{
    std::vector<ParsedEvent> out;
    std::istringstream is(json);
    std::string line;
    while (std::getline(is, line)) {
        const size_t ph = line.find("\"ph\":\"");
        if (ph == std::string::npos)
            continue;
        ParsedEvent e;
        e.phase = line[ph + 6];
        const size_t n0 = line.find("\"name\":\"") + 8;
        e.name = line.substr(n0, line.find('"', n0) - n0);
        const size_t t0 = line.find("\"ts\":");
        if (t0 != std::string::npos)
            e.ts = std::strtod(line.c_str() + t0 + 5, nullptr);
        const size_t d0 = line.find("\"tid\":");
        if (d0 != std::string::npos)
            e.tid = static_cast<uint32_t>(
                std::strtoul(line.c_str() + d0 + 6, nullptr, 10));
        out.push_back(e);
    }
    return out;
}

/**
 * Assert @p json is a structurally sound Chrome trace: valid JSON,
 * timestamps monotonic in file order, and every E closing the
 * matching B on its track.
 */
void
expectWellFormedTrace(const std::string &json)
{
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
                         0),
              0u);
    EXPECT_TRUE(JsonValidator(json).valid());

    double last = -std::numeric_limits<double>::infinity();
    std::map<uint32_t, std::vector<std::string>> stacks;
    for (const ParsedEvent &e : parseEvents(json)) {
        if (e.phase == 'M')
            continue; // metadata leads the file and carries no ts
        EXPECT_TRUE(e.phase == 'B' || e.phase == 'E' || e.phase == 'C')
            << "unexpected phase " << e.phase;
        EXPECT_GE(e.ts, last) << "timestamps must be monotonic";
        last = e.ts;
        if (e.phase == 'B') {
            stacks[e.tid].push_back(e.name);
        } else if (e.phase == 'E') {
            auto &stack = stacks[e.tid];
            ASSERT_FALSE(stack.empty())
                << "E without open B on tid " << e.tid;
            EXPECT_EQ(stack.back(), e.name);
            stack.pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

std::string
serialise(const TraceWriter &trace)
{
    std::ostringstream os;
    trace.write(os);
    return os.str();
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

TEST(Registry, CounterFindOrCreateReturnsStableRefs)
{
    Registry reg;
    telemetry::Counter &a = reg.counter("piuma.mem.reads");
    a.add(3.0);
    telemetry::Counter &b = reg.counter("piuma.mem.reads");
    EXPECT_EQ(&a, &b);
    b.increment();
    EXPECT_DOUBLE_EQ(reg.counterValue("piuma.mem.reads"), 4.0);
    EXPECT_EQ(reg.counterCount(), 1u);
}

TEST(Registry, AbsentCounterReadsZero)
{
    Registry reg;
    EXPECT_DOUBLE_EQ(reg.counterValue("never.registered"), 0.0);
    EXPECT_EQ(reg.counterCount(), 0u); // reads must not create
}

TEST(Registry, HistogramShapeFixedByFirstRegistration)
{
    Registry reg;
    Histogram &a = reg.histogram("lat", 0.0, 10.0, 4);
    Histogram &b = reg.histogram("lat", 0.0, 100.0, 64);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.numBuckets(), 4u);
    a.add(5.0);
    const Histogram *found = reg.findHistogram("lat");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->count(), 1u);
    EXPECT_EQ(reg.findHistogram("absent"), nullptr);
}

TEST(Registry, GaugesRegisterAndClear)
{
    Registry reg;
    reg.registerGauge("depth", GaugeKind::Value, [] { return 7.0; });
    reg.registerGauge("busy", GaugeKind::Rate, [] { return 1.0; });
    EXPECT_EQ(reg.gauges().size(), 2u);
    reg.clearGauges();
    EXPECT_TRUE(reg.gauges().empty());
}

TEST(Registry, VisitsCountersInLexicographicOrder)
{
    Registry reg;
    reg.counter("b.two").add(2.0);
    reg.counter("a.one").add(1.0);
    reg.counter("c.three").add(3.0);
    std::vector<std::string> order;
    reg.forEachCounter([&](const std::string &name,
                           const telemetry::Counter &c) {
        order.push_back(name);
        (void)c;
    });
    EXPECT_EQ(order,
              (std::vector<std::string>{"a.one", "b.two", "c.three"}));
}

// ---------------------------------------------------------------------
// TraceWriter.
// ---------------------------------------------------------------------

TEST(Trace, InternIsIdempotent)
{
    TraceWriter tw;
    const TraceWriter::NameId a = tw.intern("spmm");
    const TraceWriter::NameId b = tw.intern("dense");
    EXPECT_NE(a, b);
    EXPECT_EQ(tw.intern("spmm"), a);
    EXPECT_EQ(tw.nameOf(a), "spmm");
    EXPECT_EQ(tw.nameOf(b), "dense");
}

TEST(Trace, GoldenJson)
{
    TraceWriter tw;
    tw.setProcessName("pgcn-sim");
    tw.setThreadName(0, "kernels");
    tw.begin(0.0, "spmm \"demo\"", 0);
    tw.counter(500.0, "sim.queue_depth", 2.0);
    tw.end(1500.0, "spmm \"demo\"", 0);

    // Hand-authored expectation pinning the serialised format:
    // metadata first, ts in microseconds with shortest-round-trip
    // formatting, escaped quotes in names.
    const std::string expected = R"({"displayTimeUnit":"ns","traceEvents":[
{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"pgcn-sim"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"kernels"}},
{"name":"spmm \"demo\"","ph":"B","ts":0,"pid":0,"tid":0},
{"name":"sim.queue_depth","ph":"C","ts":0.5,"pid":0,"tid":0,"args":{"value":2}},
{"name":"spmm \"demo\"","ph":"E","ts":1.5,"pid":0,"tid":0}
]}
)";
    EXPECT_EQ(serialise(tw), expected);
    expectWellFormedTrace(serialise(tw));
}

TEST(Trace, SortsByTimestampAtWriteTime)
{
    // Spans are often recorded out of order (an early span's end is
    // known before a later span's begin); the writer must sort.
    TraceWriter tw;
    tw.begin(2000.0, "late", 1);
    tw.end(3000.0, "late", 1);
    tw.begin(0.0, "early", 1);
    tw.end(1000.0, "early", 1);
    expectWellFormedTrace(serialise(tw));

    // write() must not consume the writer: repeat emission matches.
    EXPECT_EQ(serialise(tw), serialise(tw));
    EXPECT_EQ(tw.eventCount(), 4u);
}

// ---------------------------------------------------------------------
// Sampler.
// ---------------------------------------------------------------------

TEST(SamplerTest, ValueAndRateGauges)
{
    Registry reg;
    double depth = 3.0;
    double busy_ns = 0.0;
    reg.registerGauge("queue.depth", GaugeKind::Value,
                      [&] { return depth; });
    reg.registerGauge("core.util", GaugeKind::Rate,
                      [&] { return busy_ns; });

    sim::Engine engine;
    Sampler sampler(reg, nullptr, 100.0);
    sampler.beginRun(0.0);

    busy_ns = 50.0; // 50 ns busy over the first 100 ns
    EXPECT_DOUBLE_EQ(sampler.onSample(100.0, engine), 200.0);

    depth = 5.0;
    busy_ns = 80.0; // +30 ns busy over the next 150 ns
    EXPECT_DOUBLE_EQ(sampler.onSample(250.0, engine), 350.0);
    EXPECT_EQ(sampler.rowCount(), 4u);

    std::ostringstream os;
    sampler.writeCsv(os);
    const std::string expected = "t_ns,metric,value\n"
                                 "100,queue.depth,3\n"
                                 "100,core.util,0.5\n"
                                 "250,queue.depth,5\n"
                                 "250,core.util,0.2\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(SamplerTest, BeginRunResetsRateBaseline)
{
    Registry reg;
    double bytes = 0.0;
    reg.registerGauge("gbps", GaugeKind::Rate, [&] { return bytes; });

    sim::Engine engine;
    Sampler sampler(reg, nullptr, 100.0);
    sampler.beginRun(0.0);
    bytes = 100.0;
    sampler.onSample(100.0, engine);

    // Second run: offset shifts, rate baseline restarts at zero.
    sampler.beginRun(1000.0);
    bytes = 40.0;
    sampler.onSample(100.0, engine);

    std::ostringstream os;
    sampler.writeCsv(os);
    EXPECT_EQ(os.str(), "t_ns,metric,value\n"
                        "100,gbps,1\n"
                        "1100,gbps,0.4\n");
}

// ---------------------------------------------------------------------
// Session.
// ---------------------------------------------------------------------

TEST(SessionTest, GlobalClockConcatenatesKernels)
{
    Session session;
    EXPECT_DOUBLE_EQ(session.beginKernel("a"), 0.0);
    session.endKernel(250.0);
    EXPECT_DOUBLE_EQ(session.beginKernel("b"), 250.0);
    session.endKernel(100.0);
    EXPECT_DOUBLE_EQ(session.runOffsetNs(), 350.0);

    const std::string json = serialise(session.trace());
    expectWellFormedTrace(json);
    EXPECT_NE(json.find("\"a\""), std::string::npos);
    EXPECT_NE(json.find("\"b\""), std::string::npos);
}

TEST(SessionTest, BeginKernelClearsStaleGauges)
{
    Session session;
    session.registry().registerGauge("stale", GaugeKind::Value,
                                     [] { return 0.0; });
    session.beginKernel("k");
    EXPECT_TRUE(session.registry().gauges().empty());
    session.endKernel(1.0);
}

// ---------------------------------------------------------------------
// Instrumented SpMM runs.
// ---------------------------------------------------------------------

graph::Csr
tinyGraph()
{
    return graph::normalizedAdjacency(
        graph::generateRmat(6, 600, graph::rmatSkewed(), 7));
}

piuma::PiumaConfig
twoCores()
{
    piuma::PiumaConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

Session::Options
detailedOptions()
{
    Session::Options opt;
    opt.samplePeriodNs = 200.0;
    opt.detailedTrace = true;
    return opt;
}

TEST(SpmmTelemetry, RecordingDoesNotPerturbTheSimulation)
{
    const graph::Csr csr = tinyGraph();
    const piuma::PiumaConfig cfg = twoCores();
    const auto off = piuma::simulateSpmm(csr, 16, cfg,
                                         piuma::SpmmAlgorithm::Dma);
    Session session(detailedOptions());
    const auto on = piuma::simulateSpmm(csr, 16, cfg,
                                        piuma::SpmmAlgorithm::Dma,
                                        &session);
    EXPECT_DOUBLE_EQ(on.makespanNs, off.makespanNs);
    EXPECT_EQ(on.simEvents, off.simEvents);
    EXPECT_EQ(on.dmaDescriptors, off.dmaDescriptors);
    EXPECT_EQ(on.nnzReads, off.nnzReads);
    EXPECT_DOUBLE_EQ(on.nnzStallNs, off.nnzStallNs);
    EXPECT_DOUBLE_EQ(on.issueNs, off.issueNs);
}

TEST(SpmmTelemetry, CountersMatchReturnedRunStats)
{
#ifdef PGCN_NO_TELEMETRY
    GTEST_SKIP() << "hooks compiled out (PGCN_TELEMETRY=OFF)";
#endif
    Session session(detailedOptions());
    const auto stats = piuma::simulateSpmm(tinyGraph(), 16, twoCores(),
                                           piuma::SpmmAlgorithm::Dma,
                                           &session);
    const Registry &reg = session.registry();
    EXPECT_DOUBLE_EQ(reg.counterValue("piuma.spmm.makespan_ns"),
                     stats.makespanNs);
    EXPECT_DOUBLE_EQ(reg.counterValue("piuma.spmm.bytes_read"),
                     stats.bytesRead);
    EXPECT_DOUBLE_EQ(reg.counterValue("piuma.spmm.stall.nnz_ns"),
                     stats.nnzStallNs);
    EXPECT_DOUBLE_EQ(reg.counterValue("piuma.dma.descriptors"),
                     static_cast<double>(stats.dmaDescriptors));
    EXPECT_DOUBLE_EQ(reg.counterValue("sim.events"),
                     static_cast<double>(stats.simEvents));
    EXPECT_DOUBLE_EQ(reg.counterValue("piuma.spmm.nnz_reads"),
                     static_cast<double>(stats.nnzReads));
    const Histogram *lat =
        reg.findHistogram("piuma.mem.access_latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->count(), 0u);
}

TEST(SpmmTelemetry, TraceIsStructurallyValid)
{
#ifdef PGCN_NO_TELEMETRY
    GTEST_SKIP() << "hooks compiled out (PGCN_TELEMETRY=OFF)";
#endif
    Session session(detailedOptions());
    piuma::simulateSpmm(tinyGraph(), 16, twoCores(),
                        piuma::SpmmAlgorithm::Dma, &session);
    const std::string json = serialise(session.trace());
    expectWellFormedTrace(json);
    // Kernel span on track 0, per-descriptor spans on the DMA tracks,
    // and sampled counter series must all be present.
    EXPECT_NE(json.find("\"spmm/dma/k=16\""), std::string::npos);
    EXPECT_NE(json.find("\"dma.descriptor\""), std::string::npos);
    EXPECT_NE(json.find("\"sim.queue_depth\""), std::string::npos);
    EXPECT_NE(json.find("\"piuma.mtp.threads_live\""),
              std::string::npos);
    EXPECT_GT(session.trace().eventCount(), 100u);
}

TEST(SpmmTelemetry, TraceIsBitReproducible)
{
    const graph::Csr csr = tinyGraph();
    const auto run = [&csr] {
        Session session(detailedOptions());
        piuma::simulateSpmm(csr, 16, twoCores(),
                            piuma::SpmmAlgorithm::Dma, &session);
        return serialise(session.trace());
    };
    EXPECT_EQ(run(), run());
}

TEST(SpmmTelemetry, MetricsCsvHasSeriesCountersAndSummaries)
{
#ifdef PGCN_NO_TELEMETRY
    GTEST_SKIP() << "hooks compiled out (PGCN_TELEMETRY=OFF)";
#endif
    Session session(detailedOptions());
    piuma::simulateSpmm(tinyGraph(), 16, twoCores(),
                        piuma::SpmmAlgorithm::Dma, &session);
    EXPECT_GT(session.sampler().rowCount(), 0u);

    const std::string path = pgcn_test::testPath("metrics.csv");
    session.writeMetricsCsv(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string csv = ss.str();
    EXPECT_EQ(csv.rfind("t_ns,metric,value\n", 0), 0u);
    EXPECT_NE(csv.find("piuma.spmm.makespan_ns"), std::string::npos);
    EXPECT_NE(csv.find("piuma.mem.slice0.util"), std::string::npos);
    EXPECT_NE(csv.find("piuma.mem.access_latency_ns.p95"),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
