/**
 * @file
 * Tests for the A100 model: the memory-capacity threshold, offload
 * arithmetic, and the Fig. 4 regimes (offload-dominated for resident
 * graphs, sampling-dominated for papers).
 */
#include <gtest/gtest.h>

#include "gpu/config.hpp"
#include "gpu/timing.hpp"
#include "graph/datasets.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::gpu;

TEST(GpuFit, AllButPapersFit)
{
    // The paper: "All graphs except papers fit on a single-node GPU".
    const auto cfg = GpuConfig::a100_40gb();
    for (const auto &d : graph::ogbDatasets()) {
        const bool fits = fitsInMemory(cfg, d.numVertices, d.numEdges, 256);
        if (d.name == "papers") {
            EXPECT_FALSE(fits) << d.name;
        } else {
            EXPECT_TRUE(fits) << d.name;
        }
    }
}

TEST(GpuFit, FootprintArithmetic)
{
    const double fp = deviceFootprintBytes(1000, 10000, 64);
    EXPECT_DOUBLE_EQ(fp, 1001.0 * 8 + 10000.0 * 8 +
                             2.0 * 1000 * 64 * 4);
}

TEST(GpuOffload, ScalesWithGraphAndFeatures)
{
    const auto cfg = GpuConfig::a100_40gb();
    const double small = offloadTimeNs(cfg, 1000, 10000, 64);
    const double bigger_graph = offloadTimeNs(cfg, 1000, 100000, 64);
    const double wider_features = offloadTimeNs(cfg, 1000, 10000, 256);
    EXPECT_GT(bigger_graph, small);
    EXPECT_GT(wider_features, small);
}

TEST(GpuOffload, DominatedByPcie)
{
    const auto cfg = GpuConfig::a100_40gb();
    // products at K=100: bytes / 25 GB/s plus fixed overheads.
    const double v = 2449029, e = 61859140;
    const double bytes = (v + 1) * 8 + e * 8 + v * 100 * 4;
    const double t = offloadTimeNs(cfg, 2449029, 61859140, 100);
    EXPECT_NEAR(t, bytes / 25.0 + 2 * cfg.transferOverheadNs, 1e3);
}

TEST(GpuSpmm, FasterThanOffloadForResidentGraphs)
{
    // Fig. 4: for graphs that fit, offload dominates the breakdown.
    const auto cfg = GpuConfig::a100_40gb();
    const auto &d = graph::datasetByName("products");
    const double off =
        offloadTimeNs(cfg, d.numVertices, d.numEdges, d.inputDim);
    const double spmm = spmmTimeNs(
        cfg, model::SpmmWorkload{d.numVertices, d.numEdges, 64});
    EXPECT_GT(off, spmm);
}

TEST(GpuSampling, DominatesForPapers)
{
    // Fig. 4: papers spends >75% of time sampling on the host, and
    // sampling+offload together dominate.
    const auto cfg = GpuConfig::a100_40gb();
    const auto &d = graph::datasetByName("papers");
    const double sampling = samplingTimeNs(cfg, d.numEdges, 128);
    const double spmm = spmmTimeNs(
        cfg, model::SpmmWorkload{d.numVertices, d.numEdges, 128});
    const double dense =
        denseMmTimeNs(cfg, d.numVertices, 128, 128);
    EXPECT_GT(sampling, 3.0 * (spmm + dense));
}

TEST(GpuSampling, GrowsWithFeatureDim)
{
    const auto cfg = GpuConfig::a100_40gb();
    EXPECT_GT(samplingTimeNs(cfg, 1u << 20, 256),
              samplingTimeNs(cfg, 1u << 20, 8));
}

TEST(GpuDense, TensorCoreAdvantage)
{
    // The GPU's dense throughput far exceeds its SpMM throughput per
    // FLOP — the reason GPU catches up at large K in Fig. 9.
    const auto cfg = GpuConfig::a100_40gb();
    const uint64_t v = 1u << 20;
    const double dense = denseMmTimeNs(cfg, v, 256, 256);
    const double dense_flop = 2.0 * v * 256.0 * 256.0;
    model::SpmmWorkload w{v, v * 16, 256};
    const double spmm = spmmTimeNs(cfg, w);
    const double spmm_flop = 2.0 * (v * 16.0) * 256.0;
    EXPECT_GT((dense_flop / dense) / (spmm_flop / spmm), 3.0);
}

} // namespace
