/**
 * @file
 * Tests for the parallel sweep runner and the ordered checkpoint
 * writer underneath it. The property everything here defends:
 * `--jobs N` is an implementation detail — checkpoint JSONL and
 * consolidated JSON come out byte-identical for any worker count, any
 * completion order, and across kill/resume, and a failing point is
 * logged and skipped without stalling the pool or poisoning its
 * siblings.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "parallel/sweep_runner.hpp"
#include "telemetry/session.hpp"
#include "test_paths.hpp"

namespace {

using namespace pgcn;
using parallel::SweepContext;
using parallel::SweepOptions;
using parallel::SweepRunner;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// OrderedCheckpointWriter

TEST(OrderedWriter, OutOfOrderCommitsFlushInSubmissionOrder)
{
    const std::string path = pgcn_test::testPath("ordered.jsonl");
    {
        JsonlCheckpoint ckpt(path, /*resume=*/false);
        OrderedCheckpointWriter writer(ckpt, 3);
        writer.commit(2, "p2", {{"x", 2.0}});
        EXPECT_EQ(ckpt.size(), 0u); // buffered: 0 and 1 outstanding
        writer.commit(0, "p0", {{"x", 0.0}});
        EXPECT_EQ(ckpt.size(), 1u); // prefix [0] flushed
        writer.commit(1, "p1", {{"x", 1.0}});
        EXPECT_EQ(ckpt.size(), 3u); // prefix [1,2] drained
        EXPECT_TRUE(writer.done());
    }
    std::istringstream lines(slurp(path));
    std::string line;
    std::vector<std::string> keys;
    while (std::getline(lines, line))
        keys.push_back(line.substr(0, line.find(',')));
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_NE(keys[0].find("p0"), std::string::npos);
    EXPECT_NE(keys[1].find("p1"), std::string::npos);
    EXPECT_NE(keys[2].find("p2"), std::string::npos);
}

TEST(OrderedWriter, SkipAdvancesCursorWithoutWriting)
{
    const std::string path = pgcn_test::testPath("skip.jsonl");
    JsonlCheckpoint ckpt(path, /*resume=*/false);
    OrderedCheckpointWriter writer(ckpt, 3);
    writer.commit(1, "p1", {{"x", 1.0}});
    writer.skip(0); // resume hit or failed point: no record
    EXPECT_EQ(ckpt.size(), 1u);
    writer.commit(2, "p2", {{"x", 2.0}});
    EXPECT_TRUE(writer.done());
    EXPECT_EQ(writer.resolved(), 3u);
    EXPECT_EQ(ckpt.size(), 2u);
    EXPECT_EQ(ckpt.find("p0"), nullptr);
}

TEST(OrderedWriter, ZeroPointsIsImmediatelyDone)
{
    JsonlCheckpoint ckpt;
    OrderedCheckpointWriter writer(ckpt, 0);
    EXPECT_TRUE(writer.done());
    EXPECT_EQ(writer.resolved(), 0u);
}

// ---------------------------------------------------------------------------
// Jobs-count invariance

/**
 * A deterministic 12-point sweep whose points finish deliberately out
 * of order under parallel execution: early submission indices sleep
 * longest, so with 4+ workers the completion order is roughly the
 * reverse of the submission order and the ordered writer has to buffer
 * nearly the whole sweep.
 */
void
addAdversarialSweep(SweepRunner &runner)
{
    constexpr size_t kPoints = 12;
    for (size_t i = 0; i < kPoints; ++i) {
        runner.add(
            "point/i=" + std::to_string(i), [i](const SweepContext &) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2 * (kPoints - i)));
                const double x = static_cast<double>(i);
                return JsonlCheckpoint::Values{
                    {"awkward", x / 3.0 + 1e-13},
                    {"sq", x * x},
                };
            });
    }
}

std::string
runSweep(unsigned jobs, const std::string &jsonl,
         const std::string &json)
{
    SweepOptions options;
    options.jobs = jobs;
    SweepRunner runner(options);
    addAdversarialSweep(runner);
    JsonlCheckpoint ckpt(jsonl, /*resume=*/false);
    const auto outcome = runner.run(ckpt);
    EXPECT_EQ(outcome.computed, runner.size());
    EXPECT_EQ(outcome.failed, 0u);
    ckpt.writeFinalJson(json);
    return slurp(jsonl) + "\x1f" + slurp(json);
}

TEST(SweepRunner, JobsCountInvariantBytes)
{
    const std::string golden =
        runSweep(1, pgcn_test::testPath("j1.jsonl"),
                 pgcn_test::testPath("j1.json"));
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(runSweep(4, pgcn_test::testPath("j4.jsonl"),
                       pgcn_test::testPath("j4.json")),
              golden);
    EXPECT_EQ(runSweep(8, pgcn_test::testPath("j8.jsonl"),
                       pgcn_test::testPath("j8.json")),
              golden);
}

TEST(SweepRunner, JobsInvariantHoldsUnderNumaAuto)
{
    // NUMA pinning moves threads around; the ordered writer must still
    // produce byte-identical output for any worker count. On
    // single-node hosts auto is a no-op by design — the test then
    // degenerates to JobsCountInvariantBytes, which is the point: the
    // env knob must never change bytes either way.
    const char *old = getenv("PGCN_NUMA");
    const std::string saved = old != nullptr ? old : "";
    setenv("PGCN_NUMA", "auto", 1);
    const std::string golden =
        runSweep(1, pgcn_test::testPath("n1.jsonl"),
                 pgcn_test::testPath("n1.json"));
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(runSweep(6, pgcn_test::testPath("n6.jsonl"),
                       pgcn_test::testPath("n6.json")),
              golden);
    if (old != nullptr)
        setenv("PGCN_NUMA", saved.c_str(), 1);
    else
        unsetenv("PGCN_NUMA");
}

// ---------------------------------------------------------------------------
// Kill/resume

TEST(SweepRunner, ResumeAfterKillMatchesSerialBytes)
{
    // Serial golden run.
    const std::string golden_jsonl = pgcn_test::testPath("g.jsonl");
    const std::string golden_json = pgcn_test::testPath("g.json");
    runSweep(1, golden_jsonl, golden_json);
    const std::string golden = slurp(golden_jsonl);

    // Simulate a kill after 5 completed points: the checkpoint file is
    // the golden log truncated to its first 5 lines (the JSONL format
    // guarantees completed lines survive a crash; the torn-line case
    // is covered in test_robustness).
    size_t cut = 0;
    for (int lines = 0; lines < 5; ++cut)
        if (golden[cut] == '\n')
            ++lines;
    const std::string partial_jsonl = pgcn_test::testPath("r.jsonl");
    {
        std::ofstream out(partial_jsonl, std::ios::binary);
        out << golden.substr(0, cut);
    }

    // Resume with 4 workers.
    SweepOptions options;
    options.jobs = 4;
    SweepRunner runner(options);
    addAdversarialSweep(runner);
    JsonlCheckpoint ckpt(partial_jsonl, /*resume=*/true);
    const auto outcome = runner.run(ckpt);
    EXPECT_EQ(outcome.reused, 5u);
    EXPECT_EQ(outcome.computed, runner.size() - 5);
    EXPECT_EQ(outcome.failed, 0u);
    const std::string resumed_json = pgcn_test::testPath("r.json");
    ckpt.writeFinalJson(resumed_json);

    EXPECT_EQ(slurp(partial_jsonl), golden);
    EXPECT_EQ(slurp(resumed_json), slurp(golden_json));
}

// ---------------------------------------------------------------------------
// Typed per-point errors

TEST(SweepRunner, FailingPointLoggedSkippedSiblingsSurvive)
{
    SweepOptions options;
    options.jobs = 4;
    SweepRunner runner(options);
    for (size_t i = 0; i < 8; ++i) {
        runner.add("p/" + std::to_string(i),
                   [i](const SweepContext &) -> JsonlCheckpoint::Values {
                       if (i == 3)
                           throw ConfigError("deliberate failure");
                       return {{"v", static_cast<double>(i)}};
                   });
    }
    const std::string jsonl = pgcn_test::testPath("err.jsonl");
    JsonlCheckpoint ckpt(jsonl, /*resume=*/false);
    const auto outcome = runner.run(ckpt);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.computed, 7u);
    ASSERT_EQ(outcome.errors.size(), 1u);
    EXPECT_EQ(outcome.errors[0].key, "p/3");
    EXPECT_NE(outcome.errors[0].message.find("deliberate failure"),
              std::string::npos);
    EXPECT_FALSE(outcome.results[3].has_value());
    ASSERT_TRUE(outcome.results[4].has_value());
    EXPECT_EQ(outcome.results[4]->at("v"), 4.0);
    // The failed point is absent from the log; the rest kept order.
    EXPECT_EQ(ckpt.size(), 7u);
    EXPECT_EQ(ckpt.find("p/3"), nullptr);
    ASSERT_NE(ckpt.find("p/7"), nullptr);
}

TEST(SweepRunner, UnexpectedExceptionCapturedAsError)
{
    SweepRunner runner(SweepOptions{});
    runner.add("boom", [](const SweepContext &) -> JsonlCheckpoint::Values {
        throw std::runtime_error("not a pgcn::Error");
    });
    JsonlCheckpoint ckpt;
    const auto outcome = runner.run(ckpt);
    ASSERT_EQ(outcome.errors.size(), 1u);
    EXPECT_NE(outcome.errors[0].message.find("unexpected"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-point fault seeding: schedule independence

TEST(SweepRunner, FaultSeedsFollowPointIndexNotWorker)
{
    const auto run = [](unsigned jobs) {
        SweepOptions options;
        options.jobs = jobs;
        sim::FaultConfig faults;
        faults.seed = 1234;
        faults.dramLatencyJitter = 0.25;
        options.faults = faults;
        SweepRunner runner(options);
        for (size_t i = 0; i < 6; ++i) {
            runner.add("f/" + std::to_string(i),
                       [](const SweepContext &ctx) {
                           // Drain one jitter sample from the injector
                           // owned by this point.
                           const double d =
                               ctx.controls->faults->dramLatency(100.0);
                           return JsonlCheckpoint::Values{{"d", d}};
                       });
        }
        JsonlCheckpoint ckpt;
        std::vector<double> out;
        const auto outcome = runner.run(ckpt);
        for (const auto &values : outcome.results)
            out.push_back(values->at("d"));
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(run(4), serial);
    // Distinct points see distinct streams (seed folds in the index).
    EXPECT_NE(serial[0], serial[1]);
}

// ---------------------------------------------------------------------------
// Telemetry ownership and merge

TEST(SweepRunner, WorkerSessionsMergeIntoCaller)
{
    SweepOptions options;
    options.jobs = 3;
    options.telemetry = true;
    options.sessionOptions.samplePeriodNs = 0.0;
    SweepRunner runner(options);
    for (size_t i = 0; i < 9; ++i) {
        runner.add("t/" + std::to_string(i),
                   [](const SweepContext &ctx) {
                       EXPECT_NE(ctx.session, nullptr);
                       ctx.session->registry().counter("sweep.pts").add(1);
                       return JsonlCheckpoint::Values{{"ok", 1.0}};
                   });
    }
    JsonlCheckpoint ckpt;
    runner.run(ckpt);
    telemetry::Session combined;
    runner.mergeTelemetryInto(combined);
    // Counters from all workers sum; no point was double-counted.
    EXPECT_EQ(combined.registry().counter("sweep.pts").value(), 9.0);
}

TEST(SweepRunner, TelemetryOffHandsNullSession)
{
    SweepRunner runner(SweepOptions{});
    runner.add("q", [](const SweepContext &ctx) {
        EXPECT_EQ(ctx.session, nullptr);
        EXPECT_NE(ctx.controls, nullptr);
        return JsonlCheckpoint::Values{{"ok", 1.0}};
    });
    JsonlCheckpoint ckpt;
    const auto outcome = runner.run(ckpt);
    EXPECT_EQ(outcome.computed, 1u);
}

TEST(SweepRunner, JobsZeroResolvesToHardwareConcurrency)
{
    SweepOptions options;
    options.jobs = 0;
    SweepRunner runner(options);
    EXPECT_GE(runner.jobs(), 1u);
}

// ---------------------------------------------------------------------------
// Self-healing: transient in-process retries, permanent quarantine

TEST(SweepRunner, TransientFailureHealsInProcess)
{
    SweepOptions options;
    options.pointAttempts = 3;
    options.retryBackoffSeconds = 0.0; // keep the test fast
    SweepRunner runner(options);
    std::atomic<int> calls{0};
    runner.add("flaky",
               [&calls](const SweepContext &) -> JsonlCheckpoint::Values {
                   if (calls.fetch_add(1) < 2)
                       throw IoError("disk hiccup");
                   return {{"ok", 1.0}};
               });
    JsonlCheckpoint ckpt(pgcn_test::testPath("heal.jsonl"),
                         /*resume=*/false);
    const auto outcome = runner.run(ckpt);
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(outcome.computed, 1u);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_EQ(outcome.retried, 2u);
    ASSERT_NE(ckpt.find("flaky"), nullptr);
}

TEST(SweepRunner, TransientExhaustionSkipsWithoutPoisoning)
{
    SweepOptions options;
    options.pointAttempts = 2;
    options.retryBackoffSeconds = 0.0;
    SweepRunner runner(options);
    std::atomic<int> calls{0};
    runner.add("cursed",
               [&calls](const SweepContext &) -> JsonlCheckpoint::Values {
                   calls.fetch_add(1);
                   throw IoError("disk always full");
               });
    JsonlCheckpoint ckpt;
    const auto outcome = runner.run(ckpt);
    EXPECT_EQ(calls.load(), 2); // initial attempt + one retry
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.quarantined, 0u);
    EXPECT_EQ(outcome.retried, 1u);
    // Environmental failures never poison the checkpoint: a later
    // resume gets to try again.
    EXPECT_EQ(ckpt.findFailure("cursed"), nullptr);
}

TEST(SweepRunner, PermanentFailureQuarantinedNeverReRun)
{
    const std::string path = pgcn_test::testPath("quarantine.jsonl");
    const auto addPoints = [](SweepRunner &runner,
                              std::atomic<int> &poison_calls) {
        runner.add("good/0", [](const SweepContext &) {
            return JsonlCheckpoint::Values{{"v", 0.0}};
        });
        runner.add("poison",
                   [&poison_calls](
                       const SweepContext &) -> JsonlCheckpoint::Values {
                       poison_calls.fetch_add(1);
                       throw ConfigError("bad shape: deterministic");
                   });
        runner.add("good/2", [](const SweepContext &) {
            return JsonlCheckpoint::Values{{"v", 2.0}};
        });
    };

    std::atomic<int> poison_calls{0};
    {
        SweepOptions options;
        options.pointAttempts = 3; // permanent: must NOT retry
        options.retryBackoffSeconds = 0.0;
        SweepRunner runner(options);
        addPoints(runner, poison_calls);
        JsonlCheckpoint ckpt(path, /*resume=*/false);
        const auto outcome = runner.run(ckpt);
        EXPECT_EQ(poison_calls.load(), 1);
        EXPECT_EQ(outcome.failed, 1u);
        EXPECT_EQ(outcome.quarantined, 0u);
        EXPECT_EQ(outcome.retried, 0u);
        // The failure is poisoned into the checkpoint with its cause.
        const std::string *cause = ckpt.findFailure("poison");
        ASSERT_NE(cause, nullptr);
        EXPECT_NE(cause->find("bad shape"), std::string::npos);
    }

    // Resume: the poisoned point is skipped outright — its compute is
    // never invoked again — and reported with its recorded cause.
    {
        SweepOptions options;
        options.jobs = 4;
        SweepRunner runner(options);
        addPoints(runner, poison_calls);
        JsonlCheckpoint ckpt(path, /*resume=*/true);
        const auto outcome = runner.run(ckpt);
        EXPECT_EQ(poison_calls.load(), 1); // unchanged: never re-run
        EXPECT_EQ(outcome.reused, 2u);
        EXPECT_EQ(outcome.quarantined, 1u);
        EXPECT_EQ(outcome.failed, 0u);
        EXPECT_EQ(outcome.computed, 0u);
        ASSERT_EQ(outcome.errors.size(), 1u);
        EXPECT_EQ(outcome.errors[0].key, "poison");
        EXPECT_NE(outcome.errors[0].message.find("quarantined: "),
                  std::string::npos);
        EXPECT_NE(outcome.errors[0].message.find("bad shape"),
                  std::string::npos);
    }
}

TEST(SweepRunner, QuarantineJsonlSurvivesRoundTripWithEscapes)
{
    const std::string path = pgcn_test::testPath("qescape.jsonl");
    {
        JsonlCheckpoint ckpt(path, /*resume=*/false);
        ckpt.record("alive", {{"v", 1.0}});
        ckpt.quarantine("dead", "line one\nline \"two\"\twith tab");
        EXPECT_EQ(ckpt.size(), 1u);
        EXPECT_EQ(ckpt.quarantinedCount(), 1u);
    }
    JsonlCheckpoint back(path, /*resume=*/true);
    EXPECT_EQ(back.size(), 1u);
    ASSERT_NE(back.find("alive"), nullptr);
    const std::string *cause = back.findFailure("dead");
    ASSERT_NE(cause, nullptr);
    EXPECT_EQ(*cause, "line one\nline \"two\"\twith tab");
    // A later successful record lifts the quarantine (last line wins).
    back.record("dead", {{"v", 2.0}});
    EXPECT_EQ(back.findFailure("dead"), nullptr);
    ASSERT_NE(back.find("dead"), nullptr);

    JsonlCheckpoint lifted(path, /*resume=*/true);
    EXPECT_EQ(lifted.findFailure("dead"), nullptr);
    ASSERT_NE(lifted.find("dead"), nullptr);
    EXPECT_EQ(lifted.quarantinedCount(), 0u);
}

TEST(SweepRunner, QuarantineSectionInFinalJsonOnlyWhenPresent)
{
    const std::string clean_json = pgcn_test::testPath("qclean.json");
    const std::string dirty_json = pgcn_test::testPath("qdirty.json");
    {
        JsonlCheckpoint ckpt(pgcn_test::testPath("qclean.jsonl"),
                             /*resume=*/false);
        ckpt.record("a", {{"v", 1.0}});
        ckpt.writeFinalJson(clean_json);
    }
    EXPECT_EQ(slurp(clean_json).find("quarantined"), std::string::npos);
    {
        JsonlCheckpoint ckpt(pgcn_test::testPath("qdirty.jsonl"),
                             /*resume=*/false);
        ckpt.record("a", {{"v", 1.0}});
        ckpt.quarantine("b", "unrecoverable fault");
        ckpt.writeFinalJson(dirty_json);
    }
    const std::string dirty = slurp(dirty_json);
    EXPECT_NE(dirty.find("\"quarantined\""), std::string::npos);
    EXPECT_NE(dirty.find("unrecoverable fault"), std::string::npos);
}

} // namespace
