/**
 * @file
 * Tests for the analytical bandwidth-bound SpMM model (paper
 * Eqs. 1-5) and the roofline helper: exact equation checks plus the
 * monotonicity properties the paper's analysis relies on.
 */
#include <gtest/gtest.h>

#include "model/spmm_model.hpp"

namespace {

using namespace pgcn::model;

TEST(SpmmModel, EquationsExactlyMatchPaper)
{
    // |V| = 100, |E| = 1000, K = 64, default element sizes.
    SpmmWorkload w{100, 1000, 64};
    const auto est = estimateSpmm(w, 10.0, 5.0);

    // Eq. 1: (|V|+1)*B_R + |E|*B_C + |E|*B_N
    EXPECT_DOUBLE_EQ(est.bytesCsr, 101.0 * 8 + 1000.0 * 4 + 1000.0 * 4);
    // Eq. 2: K*|E|*B_F
    EXPECT_DOUBLE_EQ(est.bytesFeature, 64.0 * 1000 * 4);
    // Eq. 3: K*|V|*B_F
    EXPECT_DOUBLE_EQ(est.bytesWrite, 64.0 * 100 * 4);
    // Eq. 4: 2*|E|*K
    EXPECT_DOUBLE_EQ(est.flop, 2.0 * 1000 * 64);
    // Eq. 5: reads/BW_r + writes/BW_w
    EXPECT_DOUBLE_EQ(est.timeNs,
                     (est.bytesCsr + est.bytesFeature) / 10.0 +
                         est.bytesWrite / 5.0);
    EXPECT_DOUBLE_EQ(est.gflops, est.flop / est.timeNs);
}

TEST(SpmmModel, ThroughputScalesLinearlyWithBandwidth)
{
    SpmmWorkload w{1 << 16, 1 << 20, 128};
    const auto one = estimateSpmm(w, 100.0, 100.0);
    const auto two = estimateSpmm(w, 200.0, 200.0);
    EXPECT_NEAR(two.gflops / one.gflops, 2.0, 1e-9);
}

TEST(SpmmModel, ArithmeticIntensityIsLow)
{
    // SpMM is a low arithmetic-intensity kernel (paper Section IV-A):
    // asymptotically 2K FLOP per (K*B_F + B_C + B_N) bytes, < 0.5
    // FLOP/byte with 4-byte features.
    SpmmWorkload w{1 << 20, 1 << 24, 256};
    const auto est = estimateSpmm(w, 100.0, 100.0);
    EXPECT_LT(est.arithmeticIntensity(), 0.5);
    EXPECT_GT(est.arithmeticIntensity(), 0.3);
}

TEST(SpmmModel, NnzShareOfTrafficFallsWithK)
{
    // The Fig. 8 (right) effect: CSR (NNZ-read) traffic share shrinks
    // as the embedding dimension grows.
    SpmmWorkload w8{1 << 16, 1 << 22, 8};
    SpmmWorkload w256{1 << 16, 1 << 22, 256};
    const auto e8 = estimateSpmm(w8, 100.0, 100.0);
    const auto e256 = estimateSpmm(w256, 100.0, 100.0);
    const double share8 = e8.bytesCsr / e8.totalBytes();
    const double share256 = e256.bytesCsr / e256.totalBytes();
    EXPECT_GT(share8, 5.0 * share256);
}

TEST(SpmmModel, CustomElementSizes)
{
    ElementSizes sizes;
    sizes.rowIndex = 4;
    sizes.colIndex = 8;
    sizes.nonZero = 8;
    sizes.feature = 8;
    SpmmWorkload w{10, 20, 4};
    const auto est = estimateSpmm(w, 1.0, 1.0, sizes);
    EXPECT_DOUBLE_EQ(est.bytesCsr, 11.0 * 4 + 20.0 * 8 + 20.0 * 8);
    EXPECT_DOUBLE_EQ(est.bytesFeature, 4.0 * 20 * 8);
    EXPECT_DOUBLE_EQ(est.bytesWrite, 4.0 * 10 * 8);
}

TEST(Roofline, MemoryBoundRegime)
{
    // 1000 FLOP, 10000 bytes, fast compute: memory time dominates.
    const double t = rooflineTimeNs(1000, 10000, 1000.0, 1.0);
    EXPECT_DOUBLE_EQ(t, 10000.0);
}

TEST(Roofline, ComputeBoundRegime)
{
    // 1e6 FLOP, 8 bytes, slow compute: compute time dominates.
    const double t = rooflineTimeNs(1e6, 8, 1.0, 100.0);
    EXPECT_DOUBLE_EQ(t, 1e6);
}

TEST(Roofline, CrossoverAtRidgePoint)
{
    // At the ridge point (intensity == peak/bw) both terms are equal.
    const double peak = 50.0;
    const double bw = 10.0;
    const double bytes = 100.0;
    const double flop = bytes * peak / bw;
    EXPECT_DOUBLE_EQ(rooflineTimeNs(flop, bytes, peak, bw), bytes / bw);
}

} // namespace
