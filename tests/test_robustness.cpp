/**
 * @file
 * Robustness tests: the failure paths this simulator is supposed to
 * take *gracefully*. Crafted deadlocks must surface as
 * SimDeadlockError naming the blocked agent and resource; watchdog
 * budgets must fail with a diagnostic snapshot; corrupt graph files
 * and nonsense configurations must throw typed errors instead of
 * propagating garbage; sweep checkpoints must survive torn writes and
 * reproduce byte-identical output on resume.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <random>
#include <string>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "gpu/config.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/normalize.hpp"
#include "piuma/config.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/queue.hpp"
#include "test_paths.hpp"
#include "xeon/config.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::sim;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Deadlock detection

Process
starvedConsumer(Engine &engine, BoundedQueue<int> &queue)
{
    co_await engine.announce("starved-consumer");
    [[maybe_unused]] const int v = co_await queue.pop();
}

Process
wedgedProducer(Engine &engine, BoundedQueue<int> &queue)
{
    co_await engine.announce("wedged-producer");
    co_await queue.push(1);
    co_await queue.push(2); // queue capacity 1, nobody pops: wedges here
}

TEST(Deadlock, ConsumerlessPopNamesAgentAndResource)
{
    Engine engine;
    BoundedQueue<int> queue(engine, 4, "orphan.queue");
    starvedConsumer(engine, queue);
    try {
        engine.run();
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        ASSERT_EQ(e.blocked().size(), 1u);
        EXPECT_EQ(e.blocked()[0].agent, "starved-consumer");
        EXPECT_EQ(e.blocked()[0].resource, "orphan.queue (pop: queue empty)");
        const std::string what = e.what();
        EXPECT_NE(what.find("starved-consumer"), std::string::npos);
        EXPECT_NE(what.find("orphan.queue"), std::string::npos);
    }
}

TEST(Deadlock, FullQueueProducerReported)
{
    Engine engine;
    BoundedQueue<int> queue(engine, 1, "dma.queue");
    wedgedProducer(engine, queue);
    try {
        engine.run();
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        ASSERT_EQ(e.blocked().size(), 1u);
        EXPECT_EQ(e.blocked()[0].agent, "wedged-producer");
        EXPECT_EQ(e.blocked()[0].resource, "dma.queue (push: queue full)");
    }
}

Process
politeProducer(BoundedQueue<int> &queue, int n)
{
    for (int i = 0; i < n; ++i)
        co_await queue.push(i);
}

Process
politeConsumer(BoundedQueue<int> &queue, int n, int &sum)
{
    for (int i = 0; i < n; ++i)
        sum += co_await queue.pop();
}

TEST(Deadlock, BalancedProducerConsumerRunsClean)
{
    Engine engine;
    BoundedQueue<int> queue(engine, 2, "ok.queue");
    int sum = 0;
    politeProducer(queue, 8);
    politeConsumer(queue, 8, sum);
    EXPECT_NO_THROW(engine.run());
    EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(Deadlock, UnnamedAgentGetsFallbackName)
{
    Engine engine;
    BoundedQueue<int> queue(engine, 4, "anon.queue");
    // No announce(): the report should still identify the coroutine.
    [](BoundedQueue<int> &q) -> Process {
        [[maybe_unused]] const int v = co_await q.pop();
    }(queue);
    try {
        engine.run();
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        ASSERT_EQ(e.blocked().size(), 1u);
        EXPECT_NE(e.blocked()[0].agent.find("agent@"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Watchdog budgets

/**
 * Every budget breach must carry the full postmortem snapshot: where
 * simulated time stood, how many events had dispatched, and how deep
 * the pending queue was at the moment of breach.
 */
void
checkBreachSnapshot(const SimLimitError &e, const char *budget_name)
{
    // what() names the breached budget (so logs are greppable by
    // budget kind) and embeds the snapshot.
    const std::string what = e.what();
    EXPECT_NE(what.find(budget_name), std::string::npos)
        << "what() does not name the breached budget: " << what;
    EXPECT_NE(what.find("budget exceeded"), std::string::npos);
    // snapshot() exposes the engine state on its own for log files.
    const std::string &snap = e.snapshot();
    EXPECT_FALSE(snap.empty());
    EXPECT_NE(snap.find("simulated time:"), std::string::npos);
    EXPECT_NE(snap.find("events dispatched:"), std::string::npos);
    EXPECT_NE(snap.find("pending events:"), std::string::npos);
    EXPECT_NE(what.find(snap), std::string::npos)
        << "what() must embed the snapshot";
}

TEST(RunLimits, MaxEventsBreachThrowsWithSnapshot)
{
    Engine engine;
    std::function<void()> tick = [&] { engine.schedule(1.0, tick); };
    engine.schedule(1.0, tick);
    Engine::RunLimits limits;
    limits.maxEvents = 100;
    engine.setRunLimits(limits);
    try {
        engine.run();
        FAIL() << "expected SimLimitError";
    } catch (const SimLimitError &e) {
        checkBreachSnapshot(e, "event budget");
    }
}

TEST(RunLimits, MaxSimTimeBreachThrowsWithSnapshot)
{
    Engine engine;
    std::function<void()> tick = [&] { engine.schedule(10.0, tick); };
    engine.schedule(10.0, tick);
    Engine::RunLimits limits;
    limits.maxSimTimeNs = 55.0;
    engine.setRunLimits(limits);
    try {
        engine.run();
        FAIL() << "expected SimLimitError";
    } catch (const SimLimitError &e) {
        checkBreachSnapshot(e, "simulated-time budget");
    }
    EXPECT_LE(engine.now(), 70.0);
}

TEST(RunLimits, MaxWallSecondsBreachThrowsWithSnapshot)
{
    // The wall clock is sampled every few thousand events, so the
    // ever-ticking agent guarantees the check is eventually reached;
    // the 1 ns budget is breached by the first sample.
    Engine engine;
    std::function<void()> tick = [&] { engine.schedule(1.0, tick); };
    engine.schedule(1.0, tick);
    Engine::RunLimits limits;
    limits.maxWallSeconds = 1e-9;
    engine.setRunLimits(limits);
    try {
        engine.run();
        FAIL() << "expected SimLimitError";
    } catch (const SimLimitError &e) {
        checkBreachSnapshot(e, "wall-clock budget");
    }
}

TEST(RunLimits, GenerousLimitsDoNotFire)
{
    Engine engine;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        engine.schedule(1.0 * i, [&] { ++fired; });
    Engine::RunLimits limits;
    limits.maxEvents = 1000;
    limits.maxSimTimeNs = 1e9;
    limits.maxWallSeconds = 60.0;
    engine.setRunLimits(limits);
    EXPECT_NO_THROW(engine.run());
    EXPECT_EQ(fired, 10);
}

// ---------------------------------------------------------------------------
// Fault configuration validation

TEST(FaultConfig, RejectsOutOfRangeJitter)
{
    FaultConfig bad;
    bad.dramLatencyJitter = 1.0; // full amplitude could zero a duration
    EXPECT_THROW(bad.validate(), ConfigError);
    bad.dramLatencyJitter = -0.1;
    EXPECT_THROW(bad.validate(), ConfigError);
    bad.dramLatencyJitter = kNan;
    EXPECT_THROW(bad.validate(), ConfigError);
    FaultConfig ok;
    ok.dramLatencyJitter = 0.5;
    ok.serviceRateJitter = 0.999;
    EXPECT_NO_THROW(ok.validate());
}

// ---------------------------------------------------------------------------
// Checkpoints

std::string
tmpPath(const std::string &leaf)
{
    // Unique per test *and* per process: ctest -j runs each TEST as
    // its own process and they must not race on checkpoint files.
    return pgcn_test::testPath(leaf);
}

TEST(Checkpoint, DisabledCheckpointIsInert)
{
    JsonlCheckpoint ckpt;
    EXPECT_FALSE(ckpt.enabled());
    ckpt.record("a", {{"x", 1.0}});
    EXPECT_EQ(ckpt.size(), 0u);
    EXPECT_EQ(ckpt.find("a"), nullptr);
}

TEST(Checkpoint, RecordReloadRoundTripsDoublesExactly)
{
    const std::string path = tmpPath("ckpt_roundtrip.jsonl");
    const double awkward[] = {1.0 / 3.0, 6.02214076e23, 1e-308,
                              -0.0078125, 123456789.123456789};
    {
        JsonlCheckpoint ckpt(path, /*resume=*/false);
        JsonlCheckpoint::Values values;
        for (size_t i = 0; i < std::size(awkward); ++i)
            values["v" + std::to_string(i)] = awkward[i];
        ckpt.record("point/a=1", values);
        ckpt.record("point/a=2", {{"only", 42.0}});
    }
    JsonlCheckpoint reloaded(path, /*resume=*/true);
    EXPECT_EQ(reloaded.size(), 2u);
    const auto *values = reloaded.find("point/a=1");
    ASSERT_NE(values, nullptr);
    for (size_t i = 0; i < std::size(awkward); ++i) {
        const double got = values->at("v" + std::to_string(i));
        // Bit-exact round trip, not approximate: resume depends on it.
        EXPECT_EQ(got, awkward[i]) << "field v" << i;
    }
    EXPECT_EQ(reloaded.find("point/missing"), nullptr);
}

TEST(Checkpoint, TruncatedLastLineIsSkipped)
{
    const std::string path = tmpPath("ckpt_torn.jsonl");
    {
        std::ofstream out(path);
        out << "{\"key\":\"done\",\"x\":1}\n";
        out << "{\"key\":\"torn\",\"x\":3.14"; // crash mid-write
    }
    JsonlCheckpoint ckpt(path, /*resume=*/true);
    EXPECT_EQ(ckpt.size(), 1u);
    EXPECT_NE(ckpt.find("done"), nullptr);
    EXPECT_EQ(ckpt.find("torn"), nullptr);
}

TEST(Checkpoint, FreshOpenDiscardsOldPoints)
{
    const std::string path = tmpPath("ckpt_fresh.jsonl");
    {
        JsonlCheckpoint ckpt(path, /*resume=*/false);
        ckpt.record("old", {{"x", 1.0}});
    }
    JsonlCheckpoint fresh(path, /*resume=*/false);
    EXPECT_EQ(fresh.size(), 0u);
    EXPECT_EQ(fresh.find("old"), nullptr);
}

TEST(Checkpoint, FinalJsonByteIdenticalAcrossResume)
{
    const std::string jsonl = tmpPath("ckpt_final.jsonl");
    const std::string direct_json = tmpPath("ckpt_direct.json");
    const std::string resumed_json = tmpPath("ckpt_resumed.json");
    {
        JsonlCheckpoint ckpt(jsonl, /*resume=*/false);
        ckpt.record("b", {{"gflops", 1.0 / 7.0}, {"ns", 4.5e6}});
        ckpt.record("a", {{"gflops", 2.0 / 3.0}});
        ckpt.writeFinalJson(direct_json);
    }
    {
        JsonlCheckpoint ckpt(jsonl, /*resume=*/true);
        ckpt.writeFinalJson(resumed_json);
    }
    const auto slurp = [](const std::string &p) {
        std::ifstream in(p);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };
    const std::string direct = slurp(direct_json);
    EXPECT_FALSE(direct.empty());
    EXPECT_EQ(direct, slurp(resumed_json));
    // Keys come out sorted regardless of record order.
    EXPECT_LT(direct.find("\"a\""), direct.find("\"b\""));
}

TEST(Checkpoint, UnwritablePathThrowsIoError)
{
    EXPECT_THROW(JsonlCheckpoint("/nonexistent-dir/x.jsonl", false),
                 IoError);
}

// ---------------------------------------------------------------------------
// Corrupt graph inputs

class CorruptInput : public ::testing::Test
{
  protected:
    std::string
    writeFile(const std::string &leaf, const std::string &content)
    {
        const std::string path = tmpPath(leaf);
        std::ofstream out(path, std::ios::binary);
        out << content;
        return path;
    }
};

TEST_F(CorruptInput, NegativeVertexIdRejected)
{
    const auto path = writeFile("neg.txt", "0 1 1.0\n-3 2 1.0\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, OverflowingVertexIdRejected)
{
    const auto path =
        writeFile("huge.txt", "0 1 1.0\n99999999999999999999 2 1.0\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, NanWeightRejected)
{
    const auto path = writeFile("nanw.txt", "0 1 nan\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, InfWeightRejected)
{
    const auto path = writeFile("infw.txt", "0 1 inf\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, GarbageWeightRejected)
{
    const auto path = writeFile("garbage.txt", "0 1 0.5abc\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, TrailingFieldRejected)
{
    const auto path = writeFile("extra.txt", "0 1 1.0 surprise\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, NegativeHeaderCountRejected)
{
    const auto path = writeFile("neghdr.txt", "# vertices -5\n0 1 1.0\n");
    EXPECT_THROW(graph::loadEdgeListText(path), GraphIoError);
}

TEST_F(CorruptInput, ValidEdgeListStillLoads)
{
    const auto path = writeFile(
        "ok.txt", "# vertices 4\n0 1 1.0\n1 2 0.5\n\n3 0 2.0\n");
    const graph::Coo coo = graph::loadEdgeListText(path);
    EXPECT_EQ(coo.numVertices(), 4u);
    EXPECT_EQ(coo.numEdges(), 3u);
}

TEST_F(CorruptInput, BinaryCsrTruncatedFileRejected)
{
    // A header whose claimed sizes exceed the file length must be
    // rejected *before* any allocation is attempted.
    std::string blob;
    const uint64_t magic = 0x5047434e43535231ULL; // "PGCNCSR1"
    const uint32_t version = 1;
    const uint64_t v = 1000, e = 1ull << 40; // absurd edge count
    blob.append(reinterpret_cast<const char *>(&magic), 8);
    blob.append(reinterpret_cast<const char *>(&version), 4);
    blob.append(reinterpret_cast<const char *>(&v), 8);
    blob.append(reinterpret_cast<const char *>(&e), 8);
    const auto path = writeFile("truncated.bin", blob);
    EXPECT_THROW(graph::loadCsrBinary(path), GraphIoError);
}

TEST_F(CorruptInput, BinaryCsrShortHeaderRejected)
{
    const auto path = writeFile("short.bin", "!C");
    EXPECT_THROW(graph::loadCsrBinary(path), GraphIoError);
}

// ---------------------------------------------------------------------------
// Loader fuzzing
//
// The hand-written corruption cases above cover the failure modes we
// thought of; the fuzz harness covers the ones we did not. Each seed
// corrupts a valid file — random byte flips or a truncation at a
// random offset — and the loader must do one of exactly two things:
// throw a *typed* error (GraphIoError/IoError) or return a structure
// that passes the format's own invariants (some corruptions, e.g. a
// digit flip in a weight, legitimately produce a different valid
// file). Crashes and hangs fail the harness; any other exception type
// is an escape from the error contract and fails too.

/** Corrupt @p blob in place: byte flips (even seeds) or truncation. */
std::string
corrupt(const std::string &blob, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::string out = blob;
    if (seed % 2 == 0) {
        const size_t flips = 1 + rng() % 4;
        for (size_t i = 0; i < flips; ++i)
            out[rng() % out.size()] =
                static_cast<char>(rng() & 0xff);
    } else {
        out.resize(rng() % out.size());
    }
    return out;
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

template <typename LoadAndCheck>
void
fuzzLoader(const std::string &valid_blob, const char *leaf,
           LoadAndCheck &&load)
{
    size_t rejected = 0, accepted = 0;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        const std::string path = tmpPath(leaf);
        {
            std::ofstream out(path, std::ios::binary);
            out << corrupt(valid_blob, seed);
        }
        try {
            load(path);
            ++accepted; // still-valid file: invariants checked inside
        } catch (const GraphIoError &) {
            ++rejected;
        } catch (const IoError &) {
            ++rejected;
        } catch (const std::exception &e) {
            ADD_FAILURE() << "seed " << seed
                          << ": untyped escape: " << e.what();
        }
    }
    EXPECT_EQ(rejected + accepted, 200u);
    // The harness is pointless if corruption never bites.
    EXPECT_GT(rejected, 0u);
}

TEST_F(CorruptInput, FuzzEdgeListTextNeverEscapesTypedErrors)
{
    const graph::Coo coo =
        graph::generateRmat(6, 128, graph::rmatSkewed(), 5);
    const std::string path = tmpPath("fuzz_valid.txt");
    graph::saveEdgeListText(coo, path);
    const std::string blob = slurpFile(path);
    ASSERT_FALSE(blob.empty());
    fuzzLoader(blob, "fuzz_mut.txt", [](const std::string &p) {
        const graph::Coo loaded = graph::loadEdgeListText(p);
        // Accepted parses must satisfy the loader's contract: every
        // endpoint in range, every weight finite. (A truncation to
        // zero complete lines legitimately yields an empty graph.)
        for (const auto &e : loaded.edges()) {
            ASSERT_LT(e.src, loaded.numVertices());
            ASSERT_LT(e.dst, loaded.numVertices());
            ASSERT_TRUE(std::isfinite(e.weight));
        }
    });
}

TEST_F(CorruptInput, FuzzBinaryCsrNeverEscapesTypedErrors)
{
    const graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(6, 128, graph::rmatSkewed(), 5));
    const std::string path = tmpPath("fuzz_valid.csr");
    graph::saveCsrBinary(csr, path);
    const std::string blob = slurpFile(path);
    ASSERT_FALSE(blob.empty());
    fuzzLoader(blob, "fuzz_mut.csr", [&](const std::string &p) {
        const graph::Csr loaded = graph::loadCsrBinary(p);
        // Structural invariants the loader promises to have checked.
        ASSERT_EQ(loaded.rowOffsets().size(), loaded.numVertices() + 1);
        ASSERT_EQ(loaded.rowOffsets().back(), loaded.numEdges());
        for (const auto c : loaded.cols())
            ASSERT_LT(c, loaded.numVertices());
    });
}

// ---------------------------------------------------------------------------
// Per-field config validation

template <typename Cfg, typename Mutate>
void
expectInvalid(Mutate &&mutate)
{
    Cfg cfg{};
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(PiumaConfigValidation, DefaultsAreValid)
{
    EXPECT_NO_THROW(piuma::PiumaConfig{}.validate());
    EXPECT_NO_THROW(piuma::PiumaConfig::singleDie().validate());
}

TEST(PiumaConfigValidation, EachFieldGuarded)
{
    using Cfg = piuma::PiumaConfig;
    expectInvalid<Cfg>([](Cfg &c) { c.numCores = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.mtpsPerCore = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.threadsPerMtp = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.coresPerDie = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.clockGhz = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.clockGhz = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.dramLatencyNs = -1.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.dramLatencyNs = kInf; });
    expectInvalid<Cfg>([](Cfg &c) { c.sliceBandwidthGBps = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.sliceBandwidthGBps = -14.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.netSameDieNs = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.netCrossDieNs = -250.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.netPortBandwidthGBps = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.dmaQueueDepth = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.dmaDescriptorOverheadNs = -1.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.dmaMaxInflight = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.spadBandwidthGBps = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.cacheLineBytes = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.dramLatencyScale = -1.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.dramLatencyScale = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.dramBandwidthScale = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.issueCostPerEdge = -0.5; });
    expectInvalid<Cfg>([](Cfg &c) { c.issueCostPerDescriptor = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.issueCostPerMac = -kInf; });
    expectInvalid<Cfg>([](Cfg &c) { c.issueCostPerLineLoad = kNan; });
}

TEST(XeonConfigValidation, DefaultsAreValid)
{
    EXPECT_NO_THROW(xeon::XeonConfig::platinum8380().validate());
}

TEST(XeonConfigValidation, EachFieldGuarded)
{
    using Cfg = xeon::XeonConfig;
    expectInvalid<Cfg>([](Cfg &c) { c.sockets = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.coresPerSocket = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.hyperThreadsPerCore = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.clockGhz = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.clockGhz = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.fmaUnitsPerCore = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.simdLanesFp32 = 0; });
    expectInvalid<Cfg>([](Cfg &c) { c.socketStreamBandwidthGBps = -1.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.perThreadBandwidthGBps = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.hyperThreadPenalty = -0.1; });
    expectInvalid<Cfg>([](Cfg &c) { c.hyperThreadPenalty = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.cacheBytesPerSocket = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.gatherEfficiency = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.gatherEfficiency = 1.5; });
    expectInvalid<Cfg>([](Cfg &c) { c.llcBandwidthGBps = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.cacheSkewExponent = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.denseEfficiency = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.frameworkOverheadNs = -1.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.randomAccessLatencyNs = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.chasesOverlappedPerCore = 0.0; });
}

TEST(GpuConfigValidation, DefaultsAreValid)
{
    EXPECT_NO_THROW(gpu::GpuConfig::a100_40gb().validate());
}

TEST(GpuConfigValidation, EachFieldGuarded)
{
    using Cfg = gpu::GpuConfig;
    expectInvalid<Cfg>([](Cfg &c) { c.memoryBytes = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.hbmBandwidthGBps = -5.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.denseGflops = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.denseGflops = kInf; });
    expectInvalid<Cfg>([](Cfg &c) { c.spmmEfficiency = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.spmmEfficiency = 2.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.l2CacheBytes = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.l2ReuseFactor = 1.5; });
    expectInvalid<Cfg>([](Cfg &c) { c.l2ReuseFactor = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.pcieBandwidthGBps = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.transferOverheadNs = -1.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.kernelLaunchOverheadNs = kNan; });
    expectInvalid<Cfg>([](Cfg &c) { c.hostSamplingEdgesPerNs = 0.0; });
    expectInvalid<Cfg>([](Cfg &c) { c.hostGatherBandwidthGBps = kInf; });
}

} // namespace
