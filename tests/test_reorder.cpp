/**
 * @file
 * Tests for the graph reordering subsystem: Permutation algebra and
 * round trips, the four reordering passes, island layouts, the
 * island-aligned kernels, and the locality report that explains them.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/normalize.hpp"
#include "graph/reorder.hpp"
#include "kernels/spmm.hpp"
#include "kernels/tiled_spmm.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dense_matrix.hpp"

namespace {

using namespace pgcn;
using graph::Coo;
using graph::Csr;
using graph::EdgeId;
using graph::Islandization;
using graph::Permutation;
using graph::ReorderPass;
using graph::VertexId;
using tensor::DenseMatrix;

Csr
skewedGraph(uint32_t scale = 8, EdgeId edges = 3000, uint64_t seed = 7)
{
    return graph::normalizedAdjacency(
        graph::generateRmat(scale, edges, graph::rmatSkewed(), seed));
}

/** Average |newId(u) - newId(v)| over edges, under a permutation. */
double
bandwidthUnder(const Csr &a, const Permutation &p)
{
    double sum = 0.0;
    for (VertexId u = 0; u < a.numVertices(); ++u)
        for (VertexId v : a.rowCols(u))
            sum += std::abs(static_cast<double>(p.newId(u)) -
                            static_cast<double>(p.newId(v)));
    return sum / static_cast<double>(a.numEdges());
}

// ---------------------------------------------------------------------
// Permutation algebra

TEST(Permutation, IdentityMapsEveryVertexToItself)
{
    const auto p = Permutation::identity(5);
    EXPECT_TRUE(p.isIdentity());
    for (VertexId v = 0; v < 5; ++v) {
        EXPECT_EQ(p.newId(v), v);
        EXPECT_EQ(p.oldId(v), v);
    }
}

TEST(Permutation, FromNewIdsRejectsNonBijections)
{
    EXPECT_THROW(Permutation::fromNewIds({0, 0, 1}), ShapeError);
    EXPECT_THROW(Permutation::fromNewIds({0, 3, 1}), ShapeError);
}

TEST(Permutation, InverseComposesToIdentity)
{
    const auto p = graph::shuffleOrder(64, 123);
    EXPECT_FALSE(p.isIdentity());
    EXPECT_TRUE(p.then(p.inverse()).isIdentity());
    EXPECT_TRUE(p.inverse().then(p).isIdentity());
    for (VertexId v = 0; v < 64; ++v)
        EXPECT_EQ(p.oldId(p.newId(v)), v);
}

TEST(Permutation, ThenComposesInOrder)
{
    const auto p = Permutation::fromNewIds({1, 2, 0});
    const auto q = Permutation::fromNewIds({0, 2, 1});
    const auto pq = p.then(q);
    for (VertexId v = 0; v < 3; ++v)
        EXPECT_EQ(pq.newId(v), q.newId(p.newId(v)));
}

TEST(Permutation, CsrRoundTripIsIdentity)
{
    const Csr a = skewedGraph();
    const auto p = graph::shuffleOrder(a.numVertices(), 99);
    const Csr back = p.inverse().applyToCsr(p.applyToCsr(a));
    EXPECT_EQ(back.rowOffsets(), a.rowOffsets());
    EXPECT_EQ(back.cols(), a.cols());
    EXPECT_EQ(back.vals(), a.vals());
}

TEST(Permutation, CooRoundTripPreservesEdges)
{
    Coo coo(6);
    coo.addEdge(0, 1, 2.0f);
    coo.addEdge(4, 5, 3.0f);
    coo.addEdge(2, 2, 1.0f);
    const auto p = graph::shuffleOrder(6, 5);
    Coo back = p.inverse().applyToCoo(p.applyToCoo(coo));
    back.sortAndCombineDuplicates();
    Coo expect = coo;
    expect.sortAndCombineDuplicates();
    EXPECT_EQ(back.edges(), expect.edges());
}

TEST(Permutation, FeatureRoundTripIsExact)
{
    DenseMatrix h(37, 9);
    h.fillRandom(21);
    const auto p = graph::shuffleOrder(37, 4);
    const DenseMatrix back =
        p.inverse().applyToFeatures(p.applyToFeatures(h));
    EXPECT_EQ(tensor::maxAbsDiff(back, h), 0.0f);
}

/** P A P^T (P H) == P (A H): SpMM commutes with relabeling. */
TEST(Permutation, SpmmInvariantUnderRelabeling)
{
    const Csr a = skewedGraph(8, 4000, 3);
    DenseMatrix h(a.numVertices(), 16);
    h.fillRandom(77);
    const auto p = graph::shuffleOrder(a.numVertices(), 11);

    DenseMatrix direct;
    kernels::spmmReference(a, h, direct);
    const DenseMatrix expected = p.applyToFeatures(direct);

    DenseMatrix permuted;
    kernels::spmmReference(p.applyToCsr(a), p.applyToFeatures(h),
                           permuted);
    // Relabeling reorders each row's accumulation; FMA-order changes
    // are within allClose tolerance.
    EXPECT_TRUE(tensor::allClose(permuted, expected));
}

// ---------------------------------------------------------------------
// Reordering passes

TEST(ReorderPasses, AllPassesAreValidPermutationsAndSeedStable)
{
    const Csr a = skewedGraph();
    for (ReorderPass pass : graph::allReorderPasses()) {
        const auto first = graph::makeOrder(pass, a, 42, 64);
        const auto second = graph::makeOrder(pass, a, 42, 64);
        EXPECT_EQ(first.perm.newIds(), second.perm.newIds())
            << graph::reorderPassName(pass);
        EXPECT_EQ(first.boundaries, second.boundaries)
            << graph::reorderPassName(pass);
        EXPECT_EQ(first.perm.size(), a.numVertices());
        ASSERT_GE(first.boundaries.size(), 2u);
        EXPECT_EQ(first.boundaries.front(), 0u);
        EXPECT_EQ(first.boundaries.back(), a.numVertices());
        EXPECT_TRUE(std::is_sorted(first.boundaries.begin(),
                                   first.boundaries.end()));
    }
}

TEST(ReorderPasses, ShuffleSeedsDiffer)
{
    const auto a = graph::shuffleOrder(256, 1);
    const auto b = graph::shuffleOrder(256, 2);
    EXPECT_NE(a.newIds(), b.newIds());
}

TEST(ReorderPasses, DegreeOrderSortsDescending)
{
    const Csr a = skewedGraph();
    const auto p = graph::degreeOrder(a);
    const Csr sorted = p.applyToCsr(a);
    for (VertexId u = 0; u + 1 < sorted.numVertices(); ++u)
        EXPECT_GE(sorted.degree(u), sorted.degree(u + 1));
}

TEST(ReorderPasses, RcmMinimisesBandwidthOnAPath)
{
    // A path graph relabelled randomly: RCM must recover a unit
    // bandwidth order (each vertex adjacent to its neighbours).
    constexpr VertexId n = 64;
    Coo coo(n);
    for (VertexId v = 0; v + 1 < n; ++v)
        coo.addEdge(v, v + 1);
    coo.symmetrize();
    const auto scramble = graph::shuffleOrder(n, 17);
    const Csr scrambled = scramble.applyToCsr(Csr(coo));
    const auto rcm = graph::rcmOrder(scrambled);
    EXPECT_DOUBLE_EQ(bandwidthUnder(scrambled, rcm), 1.0);
}

TEST(ReorderPasses, RcmBeatsShuffleOnBandwidth)
{
    // RMAT is expander-like, so RCM cannot reach path-graph bandwidth;
    // a solid constant-factor win over random order is the bar.
    const Csr a = skewedGraph(9, 6000, 5);
    const auto shuffled = graph::shuffleOrder(a.numVertices(), 1);
    const auto rcm = graph::rcmOrder(a);
    EXPECT_LT(bandwidthUnder(a, rcm), 0.8 * bandwidthUnder(a, shuffled));
}

TEST(ReorderPasses, HubBucketOrdersByDescendingDegreeBucket)
{
    const Csr a = skewedGraph();
    const Csr reordered = graph::hubBucketOrder(a).applyToCsr(a);
    const auto bucket = [](EdgeId d) {
        return d == 0 ? -1 : 63 - std::countl_zero(d);
    };
    for (VertexId u = 0; u + 1 < reordered.numVertices(); ++u)
        EXPECT_GE(bucket(reordered.degree(u)),
                  bucket(reordered.degree(u + 1)));
}

TEST(ReorderPasses, IslandsAreCapacitySizedAndExhaustive)
{
    const Csr a = skewedGraph(8, 4000, 13);
    constexpr VertexId cap = 48;
    const Islandization isl = graph::islandOrder(a, cap);
    EXPECT_EQ(isl.perm.size(), a.numVertices());
    ASSERT_GE(isl.boundaries.size(), 2u);
    EXPECT_EQ(isl.boundaries.front(), 0u);
    EXPECT_EQ(isl.boundaries.back(), a.numVertices());
    // Every island except the last holds exactly `cap` vertices.
    for (size_t i = 0; i + 2 < isl.boundaries.size(); ++i)
        EXPECT_EQ(isl.boundaries[i + 1] - isl.boundaries[i], cap);
    EXPECT_LE(isl.boundaries[isl.boundaries.size() - 1] -
                  isl.boundaries[isl.boundaries.size() - 2],
              cap);
}

TEST(ReorderPasses, IslandizationBeatsShuffledBlocksOnConductance)
{
    const Csr a = skewedGraph(9, 8000, 23);
    constexpr VertexId cap = 64;
    const Islandization isl = graph::islandOrder(a, cap);
    const Csr islandized = isl.perm.applyToCsr(a);
    const double island_cond =
        graph::islandConductance(islandized, isl.boundaries);

    const auto shuffled = graph::shuffleOrder(a.numVertices(), 4);
    const double shuffled_cond = graph::islandConductance(
        shuffled.applyToCsr(a),
        graph::uniformIslands(a.numVertices(), cap));
    EXPECT_LT(island_cond, shuffled_cond);
}

TEST(ReorderPasses, IslandCapacityFloorsAtOne)
{
    EXPECT_EQ(graph::islandCapacity(16.0, 128), 1u);
    EXPECT_EQ(graph::islandCapacity(1 << 20, 128),
              (1u << 20) / (4 * 128));
}

TEST(ReorderPasses, UniformIslandsCoverEveryVertex)
{
    const auto b = graph::uniformIslands(10, 4);
    EXPECT_EQ(b, (std::vector<VertexId>{0, 4, 8, 10}));
    const auto single = graph::uniformIslands(3, 8);
    EXPECT_EQ(single, (std::vector<VertexId>{0, 3}));
}

// ---------------------------------------------------------------------
// Locality report

TEST(LocalityReport, ShuffleDegradesEveryMetric)
{
    const Csr a = skewedGraph(9, 8000, 31);
    const Islandization isl = graph::islandOrder(a, 64);
    const auto stats_island =
        graph::localityStats(isl.perm.applyToCsr(a), 64);
    const auto stats_shuffle = graph::localityStats(
        graph::shuffleOrder(a.numVertices(), 2).applyToCsr(a), 64);
    EXPECT_LT(stats_island.avgNeighborDistance,
              stats_shuffle.avgNeighborDistance);
    EXPECT_LT(stats_island.avgTileWorkingSet,
              stats_shuffle.avgTileWorkingSet);
}

TEST(LocalityReport, EmptyGraphIsAllZero)
{
    const Csr empty(0, {0}, {}, {});
    const auto stats = graph::localityStats(empty, 16);
    EXPECT_EQ(stats.avgNeighborDistance, 0.0);
    EXPECT_EQ(stats.avgTileWorkingSet, 0.0);
    EXPECT_EQ(graph::islandConductance(empty, {0, 0}), 0.0);
}

// ---------------------------------------------------------------------
// Island-aligned kernels

TEST(IslandKernels, AlignedChunksSnapToBoundaries)
{
    // 4 islands of 4 rows; all nnz in the first island.
    std::vector<EdgeId> offsets(17, 0);
    for (size_t r = 0; r < 4; ++r)
        offsets[r + 1] = offsets[r] + 10;
    for (size_t r = 4; r < 16; ++r)
        offsets[r + 1] = offsets[r];
    const std::vector<VertexId> islands = {0, 4, 8, 12, 16};
    const auto bounds =
        kernels::nnzBalancedRowChunksAligned(offsets, islands, 4);
    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 16u);
    for (size_t p = 0; p + 1 < bounds.size(); ++p) {
        EXPECT_LE(bounds[p], bounds[p + 1]);
        // Interior bounds land on island boundaries only.
        EXPECT_TRUE(std::find(islands.begin(), islands.end(),
                              bounds[p]) != islands.end());
    }
}

TEST(IslandKernels, AlignedChunksHandleMoreParts_ThanIslands)
{
    std::vector<EdgeId> offsets = {0, 2, 4, 6, 8};
    const std::vector<VertexId> islands = {0, 2, 4};
    const auto bounds =
        kernels::nnzBalancedRowChunksAligned(offsets, islands, 8);
    ASSERT_EQ(bounds.size(), 9u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 4u);
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(IslandKernels, IslandBalancedSpmmMatchesReference)
{
    const Csr a = skewedGraph(8, 4000, 41);
    const Islandization isl = graph::islandOrder(a, 32);
    const Csr islandized = isl.perm.applyToCsr(a);
    DenseMatrix h(a.numVertices(), 24);
    h.fillRandom(5);

    DenseMatrix expected;
    kernels::spmmReference(islandized, h, expected);

    parallel::ThreadPool pool(4);
    DenseMatrix got;
    kernels::spmmIslandBalanced(islandized, isl.boundaries, h, got, pool);
    EXPECT_TRUE(tensor::allClose(got, expected));
}

TEST(IslandKernels, TiledSpmmWithIslandTilesMatchesReference)
{
    const Csr a = skewedGraph(8, 5000, 43);
    const Islandization isl = graph::islandOrder(a, 40);
    const Csr islandized = isl.perm.applyToCsr(a);
    DenseMatrix h(a.numVertices(), 16);
    h.fillRandom(9);

    DenseMatrix expected;
    kernels::spmmReference(islandized, h, expected);

    parallel::ThreadPool pool(2);
    const kernels::TiledSpmm tiled(islandized, 16, isl.boundaries);
    EXPECT_EQ(tiled.numTiles(), isl.boundaries.size() - 1);
    DenseMatrix got;
    tiled.apply(h, got, pool);
    EXPECT_TRUE(tensor::allClose(got, expected));
}

TEST(IslandKernels, TiledSpmmRejectsBadBoundaries)
{
    const Csr a = skewedGraph(6, 500, 2);
    EXPECT_THROW(kernels::TiledSpmm(a, 8, std::vector<VertexId>{0}),
                 ConfigError);
    EXPECT_THROW(
        kernels::TiledSpmm(a, 8, std::vector<VertexId>{0, 5}),
        ConfigError);
}

// ---------------------------------------------------------------------
// Generators satellite

TEST(GeneratorShuffle, RelabelsDeterministicallyAndPreservesStructure)
{
    const Coo coo = graph::generateRmat(7, 1200, graph::rmatSkewed(), 3);
    const Coo s1 = graph::shuffleVertexIds(coo, 8);
    const Coo s2 = graph::shuffleVertexIds(coo, 8);
    EXPECT_EQ(s1.edges(), s2.edges());
    EXPECT_EQ(s1.numEdges(), coo.numEdges());
    EXPECT_NE(s1.edges(), coo.edges());

    // Degree multiset is invariant under relabeling.
    auto degrees = [](const Coo &c) {
        std::vector<EdgeId> d(c.numVertices(), 0);
        for (const auto &e : c.edges())
            ++d[e.src];
        std::sort(d.begin(), d.end());
        return d;
    };
    EXPECT_EQ(degrees(s1), degrees(coo));
}

} // namespace
