/**
 * @file
 * Tests for the core GCN library: model configuration, functional
 * inference correctness (against a hand-rolled reference), breakdown
 * bookkeeping, and the platform models' Fig. 9/10 findings.
 */
#include <gtest/gtest.h>

#include "core/breakdown.hpp"
#include "core/gcn.hpp"
#include "core/gcn_config.hpp"
#include "core/platforms.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "kernels/spmm.hpp"
#include "tensor/dense_mm.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::core;

TEST(GcnConfig, ThreeLayerDims)
{
    GcnModelConfig cfg;
    cfg.inputDim = 100;
    cfg.hiddenDim = 64;
    cfg.outputDim = 47;
    cfg.numLayers = 3;
    const auto dims = cfg.layerDims();
    ASSERT_EQ(dims.size(), 3u);
    EXPECT_EQ(dims[0].inDim, 100u);
    EXPECT_EQ(dims[0].outDim, 64u);
    EXPECT_EQ(dims[1].inDim, 64u);
    EXPECT_EQ(dims[1].outDim, 64u);
    EXPECT_EQ(dims[2].inDim, 64u);
    EXPECT_EQ(dims[2].outDim, 47u);
    EXPECT_EQ(cfg.maxDim(), 100u);
}

TEST(GcnConfig, SingleLayer)
{
    GcnModelConfig cfg;
    cfg.numLayers = 1;
    cfg.inputDim = 16;
    cfg.outputDim = 4;
    const auto dims = cfg.layerDims();
    ASSERT_EQ(dims.size(), 1u);
    EXPECT_EQ(dims[0].inDim, 16u);
    EXPECT_EQ(dims[0].outDim, 4u);
}

TEST(Breakdown, FractionsSumToOne)
{
    KernelBreakdown bd;
    bd.spmmNs = 50;
    bd.denseNs = 30;
    bd.glueNs = 10;
    bd.offloadNs = 5;
    bd.samplingNs = 5;
    EXPECT_DOUBLE_EQ(bd.totalNs(), 100.0);
    EXPECT_DOUBLE_EQ(bd.spmmFraction() + bd.denseFraction() +
                         bd.glueFraction() + bd.offloadFraction() +
                         bd.samplingFraction(),
                     1.0);
}

TEST(Breakdown, AdditionAccumulates)
{
    KernelBreakdown a, b;
    a.spmmNs = 1;
    b.spmmNs = 2;
    b.denseNs = 3;
    const auto c = a + b;
    EXPECT_DOUBLE_EQ(c.spmmNs, 3.0);
    EXPECT_DOUBLE_EQ(c.denseNs, 3.0);
}

class GcnInference : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto coo = graph::generateRmat(8, 2000, graph::rmatSkewed(), 17);
        adjacency_ = std::make_unique<graph::Csr>(
            graph::normalizedAdjacency(coo));
        features_ = tensor::DenseMatrix(adjacency_->numVertices(), 32);
        features_.fillRandom(5, 0.5f);
    }

    std::unique_ptr<graph::Csr> adjacency_;
    tensor::DenseMatrix features_;
};

TEST_F(GcnInference, OutputShapeMatchesConfig)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 16;
    cfg.outputDim = 4;
    GcnModel model(cfg);
    parallel::ThreadPool pool(2);
    const auto out = model.infer(*adjacency_, features_, pool);
    EXPECT_EQ(out.rows(), adjacency_->numVertices());
    EXPECT_EQ(out.cols(), 4u);
}

TEST_F(GcnInference, MatchesManualLayerComposition)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 16;
    cfg.outputDim = 4;
    cfg.numLayers = 2;
    GcnModel model(cfg);
    parallel::ThreadPool pool(2);
    const auto out = model.infer(*adjacency_, features_, pool);

    // Hand-rolled: H1 = relu(A (H0 W0)); H2 = A (H1 W1).
    tensor::DenseMatrix hw, h1, hw2, h2;
    tensor::denseMmReference(features_, model.weights(0), hw);
    kernels::spmmReference(*adjacency_, hw, h1);
    tensor::reluInPlace(h1);
    tensor::denseMmReference(h1, model.weights(1), hw2);
    kernels::spmmReference(*adjacency_, hw2, h2);

    EXPECT_TRUE(allClose(out, h2, 1e-3f, 1e-4f))
        << "max diff " << maxAbsDiff(out, h2);
}

TEST_F(GcnInference, EdgeParallelAgreesWithVertexParallel)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 8;
    cfg.outputDim = 8;
    GcnModel model(cfg);
    parallel::ThreadPool pool(4);
    const auto a =
        model.infer(*adjacency_, features_, pool,
                    CpuSpmmKind::VertexParallel);
    const auto b = model.infer(*adjacency_, features_, pool,
                               CpuSpmmKind::EdgeParallel);
    EXPECT_TRUE(allClose(a, b, 1e-3f, 1e-4f));
}

TEST_F(GcnInference, AllSpmmKindsAgreeInBothLayerOrders)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 8;
    cfg.outputDim = 8;
    for (const auto order : {LayerOrder::TransformThenAggregate,
                             LayerOrder::AggregateThenTransform}) {
        cfg.order = order;
        GcnModel model(cfg);
        parallel::ThreadPool pool(4);
        const auto ref =
            model.infer(*adjacency_, features_, pool,
                        CpuSpmmKind::VertexParallel);
        for (const auto kind :
             {CpuSpmmKind::EdgeParallel, CpuSpmmKind::NnzBalanced,
              CpuSpmmKind::Fused}) {
            const auto out =
                model.infer(*adjacency_, features_, pool, kind);
            EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
                << "kind " << static_cast<int>(kind) << ", order "
                << static_cast<int>(order) << ", max diff "
                << maxAbsDiff(ref, out);
        }
    }
}

TEST_F(GcnInference, FusedBreakdownSplitsAcrossSpmmAndDense)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 16;
    cfg.outputDim = 4;
    cfg.order = LayerOrder::AggregateThenTransform;
    GcnModel model(cfg);
    parallel::ThreadPool pool(2);
    KernelBreakdown bd;
    model.infer(*adjacency_, features_, pool, CpuSpmmKind::Fused, &bd);
    EXPECT_GT(bd.spmmNs, 0.0);
    EXPECT_GT(bd.denseNs, 0.0);
}

TEST_F(GcnInference, BreakdownCoversAllCategories)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 16;
    cfg.outputDim = 4;
    GcnModel model(cfg);
    parallel::ThreadPool pool(2);
    KernelBreakdown bd;
    model.infer(*adjacency_, features_, pool,
                CpuSpmmKind::VertexParallel, &bd);
    EXPECT_GT(bd.spmmNs, 0.0);
    EXPECT_GT(bd.denseNs, 0.0);
    EXPECT_EQ(bd.offloadNs, 0.0);
    EXPECT_EQ(bd.samplingNs, 0.0);
}

TEST_F(GcnInference, DeterministicWeights)
{
    GcnModelConfig cfg;
    cfg.inputDim = 32;
    cfg.hiddenDim = 8;
    cfg.outputDim = 2;
    GcnModel a(cfg, 42), b(cfg, 42);
    EXPECT_TRUE(allClose(a.weights(0), b.weights(0), 0.0f, 0.0f));
    EXPECT_TRUE(allClose(a.weights(2), b.weights(2), 0.0f, 0.0f));
}

// ------------------------------------------------- platform findings

GcnModelConfig
sweepModel(const graph::DatasetInfo &d, uint64_t hidden)
{
    GcnModelConfig cfg;
    cfg.inputDim = d.inputDim;
    cfg.hiddenDim = hidden;
    cfg.outputDim = d.numClasses;
    cfg.numLayers = 3;
    return cfg;
}

TEST(Platforms, PiumaAlwaysOutperformsCpu)
{
    // Fig. 9 key takeaway 2: "A single PIUMA node always outperforms
    // the CPU system."
    XeonPlatform cpu;
    PiumaPlatform piuma;
    for (const auto &d : graph::ogbDatasets()) {
        for (uint64_t k : {uint64_t{8}, uint64_t{64}, uint64_t{256}}) {
            const auto model = sweepModel(d, k);
            const double cpu_ns = cpu.timeGcn(d, model).totalNs();
            const double piuma_ns = piuma.timeGcn(d, model).totalNs();
            EXPECT_GT(cpu_ns / piuma_ns, 1.0)
                << d.name << " K=" << k;
        }
    }
}

TEST(Platforms, PiumaSpeedupShrinksWithEmbeddingDim)
{
    // Fig. 9: PIUMA speedup decreases as K grows (dense pressure).
    XeonPlatform cpu;
    PiumaPlatform piuma;
    const auto &d = graph::datasetByName("products");
    const double s8 = cpu.timeGcn(d, sweepModel(d, 8)).totalNs() /
                      piuma.timeGcn(d, sweepModel(d, 8)).totalNs();
    const double s256 = cpu.timeGcn(d, sweepModel(d, 256)).totalNs() /
                        piuma.timeGcn(d, sweepModel(d, 256)).totalNs();
    EXPECT_GT(s8, s256);
}

TEST(Platforms, GpuSpeedupGrowsWithEmbeddingDim)
{
    // Fig. 9: GPU speedup over CPU increases with K (offload
    // amortised over more compute).
    XeonPlatform cpu;
    GpuPlatform gpu;
    const auto &d = graph::datasetByName("products");
    const double s8 = cpu.timeGcn(d, sweepModel(d, 8)).totalNs() /
                      gpu.timeGcn(d, sweepModel(d, 8)).totalNs();
    const double s256 = cpu.timeGcn(d, sweepModel(d, 256)).totalNs() /
                        gpu.timeGcn(d, sweepModel(d, 256)).totalNs();
    EXPECT_GT(s256, s8);
}

TEST(Platforms, GpuLosesToCpuAtSmallEmbedding)
{
    // Fig. 9: "GPUs actually performed worse than CPUs for lower
    // embedding dimensions due to the offloading overhead."
    XeonPlatform cpu;
    GpuPlatform gpu;
    const auto &d = graph::datasetByName("arxiv");
    const auto model = sweepModel(d, 8);
    EXPECT_LT(cpu.timeGcn(d, model).totalNs(),
              gpu.timeGcn(d, model).totalNs());
}

TEST(Platforms, PapersOnGpuIsSamplingBound)
{
    // Fig. 4: papers does not fit; sampling+offload dominate.
    GpuPlatform gpu;
    const auto &d = graph::datasetByName("papers");
    const auto bd = gpu.timeGcn(d, sweepModel(d, 128));
    EXPECT_FALSE(gpu.fits(d, sweepModel(d, 128)));
    EXPECT_GT(bd.samplingFraction(), 0.5);
    EXPECT_GT(bd.samplingFraction() + bd.offloadFraction(), 0.85);
}

TEST(Platforms, DenseDominatesPiumaAtLargeK)
{
    // Fig. 10: at K=256, arxiv/collab/mag/citation2/papers spend >75%
    // in Dense MM on PIUMA.
    PiumaPlatform piuma;
    for (const char *name : {"arxiv", "collab", "mag", "citation2",
                             "papers"}) {
        const auto &d = graph::datasetByName(name);
        const auto bd = piuma.timeGcn(d, sweepModel(d, 256));
        EXPECT_GT(bd.denseFraction(), 0.6) << name;
    }
}

TEST(Platforms, SpmmDominatesCpuForLargeDenseGraphs)
{
    // Fig. 3: ppa/products/ddi/proteins/papers spend >80% in SpMM on
    // CPU at K=256.
    XeonPlatform cpu;
    for (const char *name : {"ppa", "products", "proteins", "papers"}) {
        const auto &d = graph::datasetByName(name);
        const auto bd = cpu.timeGcn(d, sweepModel(d, 256));
        EXPECT_GT(bd.spmmFraction(), 0.7) << name;
    }
}

TEST(Platforms, PiumaSpmmSpeedupExceedsGpuOnPowerGraphs)
{
    // Fig. 9: PIUMA significantly outperforms GPU on SpMM for the
    // low-locality power-16/power-22 graphs.
    PiumaPlatform piuma;
    GpuPlatform gpu;
    for (const char *name : {"power-16", "power-22"}) {
        const auto &d = graph::datasetByName(name);
        const auto model = sweepModel(d, 64);
        EXPECT_LT(piuma.spmmOnlyNs(d, model), gpu.spmmOnlyNs(d, model))
            << name;
    }
}

} // namespace

// ------------------------------------------------------ layer order

namespace {

using namespace pgcn;
using namespace pgcn::core;

TEST(LayerOrder, SpmmDimFollowsOrder)
{
    GcnModelConfig cfg;
    cfg.inputDim = 100;
    cfg.hiddenDim = 64;
    cfg.outputDim = 10;
    const LayerDims dims{100, 64};
    cfg.order = LayerOrder::TransformThenAggregate;
    EXPECT_EQ(cfg.spmmDim(dims), 64u);
    cfg.order = LayerOrder::AggregateThenTransform;
    EXPECT_EQ(cfg.spmmDim(dims), 100u);
}

TEST(LayerOrder, BothOrdersGiveSameResult)
{
    // (A H) W == A (H W): associativity, up to float rounding.
    auto coo = graph::generateRmat(8, 2000, graph::rmatSkewed(), 23);
    auto adjacency = graph::normalizedAdjacency(coo);
    tensor::DenseMatrix features(adjacency.numVertices(), 24);
    features.fillRandom(9, 0.5f);
    parallel::ThreadPool pool(2);

    GcnModelConfig cfg;
    cfg.inputDim = 24;
    cfg.hiddenDim = 12;
    cfg.outputDim = 6;
    GcnModel a_model(cfg, 77);
    cfg.order = LayerOrder::AggregateThenTransform;
    GcnModel b_model(cfg, 77);

    const auto a = a_model.infer(adjacency, features, pool);
    const auto b = b_model.infer(adjacency, features, pool);
    EXPECT_TRUE(allClose(a, b, 1e-3f, 1e-4f))
        << "max diff " << maxAbsDiff(a, b);
}

TEST(LayerOrder, AggregateFirstCostsMoreWhenInputWide)
{
    // arxiv input dim 128 vs hidden 8: aggregating first runs the
    // SpMM at 128 instead of 8, which the platform models must
    // reflect (the PyG order is the cheap one here).
    XeonPlatform cpu;
    const auto &d = graph::datasetByName("products");
    GcnModelConfig cfg;
    cfg.inputDim = d.inputDim;
    cfg.hiddenDim = 8;
    cfg.outputDim = d.numClasses;
    const double transform_first = cpu.spmmOnlyNs(d, cfg);
    cfg.order = LayerOrder::AggregateThenTransform;
    const double aggregate_first = cpu.spmmOnlyNs(d, cfg);
    EXPECT_GT(aggregate_first, 1.5 * transform_first);
}

} // namespace
