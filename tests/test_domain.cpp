/**
 * @file
 * Differential determinism harness for sharded event domains
 * (sim::DomainSet). Four guarantees are pinned here:
 *
 *  1. Bit-identity: `--domains N` produces byte/bit-identical results
 *     to `--domains 1` — on the determinism goldens (full
 *     SpmmRunStats field equality plus the hardcoded golden values at
 *     N > 1), on telemetry counters, and on a ~50-config fig8-style
 *     fault soak whose checkpoint JSONL files are compared byte for
 *     byte across N in {1, 2, 4, 8}.
 *
 *  2. The conservative clock protocol (Parallel mode): randomized
 *     micro-topologies with cross-domain messages at the lookahead
 *     boundary execute every event at exactly its timestamp, in
 *     non-decreasing order per domain, for adversarial lookahead
 *     values including 1 ns; an idle neighbor never deadlocks the set
 *     (null-message idle-advance), and SimDeadlockError still names
 *     blocked agents across domains.
 *
 *  3. The (timestamp, source domain, source sequence) mailbox-merge
 *     tiebreak for zero-delay/equal-timestamp cross-domain events.
 *
 *  4. The clock plumbing itself: Engine::runUntil horizon strictness
 *     and the DomainSet::awaitResponse fast path, which must consume
 *     no event and no sequence number (bit-for-bit the same as
 *     Engine::delayUntil).
 *
 * Note on lookahead and the model: the PIUMA programs always run in
 * Sequenced mode, whose merge order is independent of lookahead by
 * construction (see sim/domain.hpp), so the adversarial lookahead
 * sweep lives in the Parallel-mode property tests where lookahead is
 * load-bearing. lookaheadNs = 1.0 *is* the 1 ns adversarial case.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <thread>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/checkpoint.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "parallel/sweep_runner.hpp"
#include "piuma/memory.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/domain.hpp"
#include "sim/queue.hpp"
#include "telemetry/session.hpp"
#include "test_paths.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::piuma;
using namespace pgcn::sim;

graph::Csr
goldenGraph(uint32_t scale, graph::EdgeId edges, uint64_t seed)
{
    return graph::normalizedAdjacency(
        graph::generateRmat(scale, edges, graph::rmatSkewed(), seed));
}

PiumaConfig
twoCores()
{
    PiumaConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

/** Run one SpMM with @p domains event domains (optionally faulted). */
SpmmRunStats
runSharded(const graph::Csr &csr, unsigned k, const PiumaConfig &cfg,
           SpmmAlgorithm alg, unsigned domains,
           const FaultConfig *fault_cfg = nullptr,
           telemetry::Session *session = nullptr,
           DomainMode mode = DomainMode::Sequenced)
{
    std::optional<FaultInjector> faults;
    SimControls controls;
    controls.domains = domains;
    controls.domainMode = mode;
    if (fault_cfg != nullptr) {
        faults.emplace(*fault_cfg);
        controls.faults = &*faults;
    }
    return simulateSpmm(csr, k, cfg, alg, session, &controls);
}

/**
 * Every deterministic SpmmRunStats field must match bit for bit
 * (EXPECT_EQ on double is exact equality, not a tolerance). Only the
 * host-measured fields (wallSeconds, eventsPerSec) are exempt —
 * plus, when @p same_mode is false, peakEventQueueDepth: Parallel
 * mode snapshots queue depths per worker round, so its peak is a
 * wall-clock artifact, not a simulated result (everything else,
 * including the event count and critical path, must still agree).
 */
void
expectStatsIdentical(const SpmmRunStats &a, const SpmmRunStats &b,
                     bool same_mode = true)
{
    EXPECT_EQ(a.makespanNs, b.makespanNs);
    EXPECT_EQ(a.flop, b.flop);
    EXPECT_EQ(a.gflops, b.gflops);
    EXPECT_EQ(a.bytesRead, b.bytesRead);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
    EXPECT_EQ(a.bytesServed, b.bytesServed);
    EXPECT_EQ(a.memUtilization, b.memUtilization);
    EXPECT_EQ(a.maxMemUtilization, b.maxMemUtilization);
    EXPECT_EQ(a.netUtilization, b.netUtilization);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.memRemoteAccesses, b.memRemoteAccesses);
    EXPECT_EQ(a.remoteAccessFraction, b.remoteAccessFraction);
    EXPECT_EQ(a.maxSliceBytesFraction, b.maxSliceBytesFraction);
    EXPECT_EQ(a.nnzStallNs, b.nnzStallNs);
    EXPECT_EQ(a.rowOffsetStallNs, b.rowOffsetStallNs);
    EXPECT_EQ(a.featureStallNs, b.featureStallNs);
    EXPECT_EQ(a.dmaQueueStallNs, b.dmaQueueStallNs);
    EXPECT_EQ(a.issueNs, b.issueNs);
    EXPECT_EQ(a.stallMemoryNs, b.stallMemoryNs);
    EXPECT_EQ(a.stallNetworkNs, b.stallNetworkNs);
    EXPECT_EQ(a.issueUtilization, b.issueUtilization);
    EXPECT_EQ(a.dmaUtilization, b.dmaUtilization);
    EXPECT_EQ(a.criticalPathEvents, b.criticalPathEvents);
    EXPECT_EQ(a.criticalPathParallelism, b.criticalPathParallelism);
    EXPECT_EQ(a.latencyHidingEffectiveness,
              b.latencyHidingEffectiveness);
    EXPECT_EQ(a.exposedStallNs, b.exposedStallNs);
    EXPECT_EQ(a.avgNnzLatencyNs, b.avgNnzLatencyNs);
    EXPECT_EQ(a.nnzReads, b.nnzReads);
    EXPECT_EQ(a.dmaDescriptors, b.dmaDescriptors);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeoutsFired, b.timeoutsFired);
    EXPECT_EQ(a.stuckResets, b.stuckResets);
    EXPECT_EQ(a.goodputBytes, b.goodputBytes);
    EXPECT_EQ(a.retriedBytes, b.retriedBytes);
    EXPECT_EQ(a.recoveryNs, b.recoveryNs);
    if (same_mode) {
        EXPECT_EQ(a.peakEventQueueDepth, b.peakEventQueueDepth);
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// 1. Sequenced bit-identity on the determinism goldens

// The golden DMA SpMM constants from test_determinism.cpp must
// reproduce *at four domains*: same graph, same K, same bits.
TEST(DomainSequenced, GoldenDmaSpmmAtFourDomains)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const SpmmRunStats s =
        runSharded(csr, 16, twoCores(), SpmmAlgorithm::Dma, 4);

    EXPECT_DOUBLE_EQ(s.makespanNs, 10712.857142857198);
    EXPECT_EQ(s.simEvents, 22697u);
    EXPECT_EQ(s.dmaDescriptors, 3142u);
    EXPECT_DOUBLE_EQ(s.nnzStallNs, 444165.11607144284);
    EXPECT_DOUBLE_EQ(s.rowOffsetStallNs, 323628.40178571834);
    EXPECT_DOUBLE_EQ(s.featureStallNs, 0.0);
    EXPECT_DOUBLE_EQ(s.dmaQueueStallNs, 231330.3839286021);
    EXPECT_DOUBLE_EQ(s.issueNs, 0.0);
    EXPECT_DOUBLE_EQ(s.bytesRead, 274048.0);
    EXPECT_DOUBLE_EQ(s.bytesWritten, 23936.0);
}

// All-field differential: domains in {2, 4, 8} vs the serial engine,
// both algorithms. Note 8 domains > 2 cores: domains with no cores
// bound to them must stay inert.
TEST(DomainSequenced, BitIdenticalAcrossDomainCounts)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const PiumaConfig cfg = twoCores();
    for (const SpmmAlgorithm alg :
         {SpmmAlgorithm::Dma, SpmmAlgorithm::LoopUnrolled}) {
        const unsigned k = alg == SpmmAlgorithm::Dma ? 16u : 8u;
        const SpmmRunStats serial = runSharded(csr, k, cfg, alg, 1);
        for (const unsigned d : {2u, 4u, 8u}) {
            SCOPED_TRACE("alg=" + std::string(spmmAlgorithmName(alg)) +
                         " domains=" + std::to_string(d));
            expectStatsIdentical(serial, runSharded(csr, k, cfg, alg, d));
        }
    }
}

// Same differential with the full fault machinery live: jitters
// perturbing every modeled latency plus hard drops exercising the
// timeout/retry/backoff recovery protocol.
TEST(DomainSequenced, BitIdenticalWithFaultsInjected)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const PiumaConfig cfg = twoCores();
    FaultConfig fc;
    fc.seed = 17;
    fc.dramLatencyJitter = 0.2;
    fc.serviceRateJitter = 0.1;
    fc.dmaOverheadJitter = 0.1;
    fc.dramDropRate = 0.02;
    fc.dmaDropRate = 0.01;
    const SpmmRunStats serial =
        runSharded(csr, 16, cfg, SpmmAlgorithm::Dma, 1, &fc);
    EXPECT_GT(serial.retries, 0u); // the soak must actually fault
    for (const unsigned d : {2u, 4u, 8u}) {
        SCOPED_TRACE("domains=" + std::to_string(d));
        expectStatsIdentical(
            serial, runSharded(csr, 16, cfg, SpmmAlgorithm::Dma, d, &fc));
    }
}

// Telemetry counters — the source of the manifest's counter digest —
// must agree name for name and bit for bit across domain counts.
TEST(DomainSequenced, TelemetryCountersIdentical)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const PiumaConfig cfg = twoCores();
    using Counters = std::vector<std::pair<std::string, double>>;
    const auto collect = [&](unsigned domains) {
        telemetry::Session session;
        runSharded(csr, 16, cfg, SpmmAlgorithm::Dma, domains, nullptr,
                   &session);
        Counters out;
        session.registry().forEachCounter(
            [&out](const std::string &name,
                   const telemetry::Counter &c) {
                out.emplace_back(name, c.value());
            });
        return out;
    };
    const Counters serial = collect(1);
    EXPECT_FALSE(serial.empty());
    const Counters sharded = collect(4);
    ASSERT_EQ(serial.size(), sharded.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].first, sharded[i].first);
        EXPECT_EQ(serial[i].second, sharded[i].second)
            << "counter " << serial[i].first;
    }
}

// Watchdog budgets are armed on the shared clock block: an event
// budget must trip at the same global event — same message — no
// matter how many shards dispatch the run.
TEST(DomainSequenced, EventBudgetTripsAtSameGlobalEvent)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const PiumaConfig cfg = twoCores();
    const auto breachLine = [&](unsigned domains) {
        SimControls controls;
        controls.domains = domains;
        controls.limits.maxEvents = 2000;
        try {
            simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma, nullptr,
                         &controls);
        } catch (const SimLimitError &e) {
            const std::string what = e.what();
            return what.substr(0, what.find('\n'));
        }
        return std::string("no breach");
    };
    const std::string serial = breachLine(1);
    EXPECT_NE(serial, "no breach");
    EXPECT_EQ(serial, breachLine(4));
}

TEST(DomainSequenced, ZeroDomainsClampsToOne)
{
    DomainSet set(0u);
    EXPECT_EQ(set.domains(), 1u);
    EXPECT_EQ(set.run(), 0.0);
}

// ---------------------------------------------------------------------------
// 2. Fig8-style fault soak: checkpoint JSONL bytes across domain counts

/** One soak point: a small fig8-ish configuration. */
struct SoakConfig
{
    unsigned cores;
    unsigned k;
    SpmmAlgorithm alg;
    double latScale;
};

const std::vector<SoakConfig> &
soakConfigs()
{
    static const std::vector<SoakConfig> configs = {
        {1, 8, SpmmAlgorithm::Dma, 1.0},
        {1, 16, SpmmAlgorithm::Dma, 1.0},
        {2, 8, SpmmAlgorithm::Dma, 1.0},
        {2, 16, SpmmAlgorithm::Dma, 1.0},
        {2, 8, SpmmAlgorithm::LoopUnrolled, 1.0},
        {4, 8, SpmmAlgorithm::Dma, 1.0},
        {2, 16, SpmmAlgorithm::Dma, 4.0},
    };
    return configs;
}

void
addSoakPoints(parallel::SweepRunner &runner, const graph::Csr &csr)
{
    for (const SoakConfig &sc : soakConfigs()) {
        const std::string key =
            "soak/cores=" + std::to_string(sc.cores) +
            "/k=" + std::to_string(sc.k) +
            "/alg=" + spmmAlgorithmName(sc.alg) +
            "/lat=" + std::to_string(static_cast<unsigned>(sc.latScale));
        runner.add(key, [&csr, sc](const parallel::SweepContext &ctx) {
            PiumaConfig cfg;
            cfg.numCores = sc.cores;
            cfg.dramLatencyScale = sc.latScale;
            const SpmmRunStats s = simulateSpmm(
                csr, sc.k, cfg, sc.alg, ctx.session, ctx.controls);
            return JsonlCheckpoint::Values{
                {"makespan_ns", s.makespanNs},
                {"sim_events", static_cast<double>(s.simEvents)},
                {"nnz_stall_ns", s.nnzStallNs},
                {"row_offset_stall_ns", s.rowOffsetStallNs},
                {"feature_stall_ns", s.featureStallNs},
                {"dma_queue_stall_ns", s.dmaQueueStallNs},
                {"bytes_served", s.bytesServed},
                {"retries", static_cast<double>(s.retries)},
                {"recovery_ns", s.recoveryNs},
                {"critical_path_events",
                 static_cast<double>(s.criticalPathEvents)},
            };
        });
    }
}

// 7 configs x {faults off, faults on} x domains {1, 2, 4, 8} = 56
// simulations. For each fault mode the four checkpoint JSONL files
// must be byte-identical — the same property the CI fig8 smoke pins
// with cmp, here under fault injection too.
TEST(DomainSoak, CheckpointBytesInvariantAcrossDomainCounts)
{
    const graph::Csr csr = goldenGraph(7, 1200, 3);
    for (const bool faulted : {false, true}) {
        std::vector<std::string> files;
        for (const unsigned d : {1u, 2u, 4u, 8u}) {
            const std::string path = pgcn_test::testPath(
                std::string(faulted ? "soak_faulted_d" : "soak_clean_d") +
                std::to_string(d) + ".jsonl");
            parallel::SweepOptions options;
            options.jobs = 1;
            options.domains = d;
            if (faulted) {
                FaultConfig fc;
                fc.seed = 7;
                fc.dramLatencyJitter = 0.15;
                fc.dramDropRate = 0.01;
                fc.dmaDropRate = 0.01;
                options.faults = fc;
            }
            parallel::SweepRunner runner(options);
            addSoakPoints(runner, csr);
            JsonlCheckpoint ckpt(path, /*resume=*/false);
            const parallel::SweepRunner::Outcome out = runner.run(ckpt);
            EXPECT_EQ(out.computed, soakConfigs().size());
            EXPECT_TRUE(out.errors.empty());
            files.push_back(path);
        }
        const std::string serial_bytes = slurp(files[0]);
        EXPECT_FALSE(serial_bytes.empty());
        for (size_t i = 1; i < files.size(); ++i) {
            SCOPED_TRACE(files[i]);
            EXPECT_EQ(serial_bytes, slurp(files[i]));
        }
    }
}

// --domains composes with --jobs: sharded points under a parallel
// sweep still reproduce the serial sweep's checkpoint bytes.
TEST(DomainSoak, ComposesWithParallelSweepJobs)
{
    const graph::Csr csr = goldenGraph(7, 1200, 3);
    const auto sweepBytes = [&](unsigned jobs, unsigned domains) {
        const std::string path = pgcn_test::testPath(
            "compose_j" + std::to_string(jobs) + "_d" +
            std::to_string(domains) + ".jsonl");
        parallel::SweepOptions options;
        options.jobs = jobs;
        options.domains = domains;
        parallel::SweepRunner runner(options);
        addSoakPoints(runner, csr);
        JsonlCheckpoint ckpt(path, /*resume=*/false);
        runner.run(ckpt);
        return slurp(path);
    };
    const std::string serial = sweepBytes(1, 1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, sweepBytes(4, 4));
}

// ---------------------------------------------------------------------------
// 2b. Parallel domain mode on the PIUMA model itself
//
// The latency-bearing memory response path makes every cross-domain
// event carry at least MemorySystem::modelLookaheadNs() of simulated
// latency, so the threaded Parallel mode is legal for the full model.
// These differentials are the proof obligation: Parallel must agree
// with the Sequenced oracle on every deterministic stat, clean and
// under the full fault machinery, at every domain count.

TEST(DomainModeParallel, BitIdenticalToSequencedAcrossDomainCounts)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    PiumaConfig cfg;
    cfg.numCores = 8; // so 2, 4, and 8 domains all shard for real
    for (const SpmmAlgorithm alg :
         {SpmmAlgorithm::Dma, SpmmAlgorithm::LoopUnrolled}) {
        const unsigned k = alg == SpmmAlgorithm::Dma ? 16u : 8u;
        const SpmmRunStats serial = runSharded(csr, k, cfg, alg, 1);
        for (const unsigned d : {2u, 4u, 8u}) {
            SCOPED_TRACE("alg=" + std::string(spmmAlgorithmName(alg)) +
                         " domains=" + std::to_string(d));
            const SpmmRunStats seq = runSharded(csr, k, cfg, alg, d);
            const SpmmRunStats par =
                runSharded(csr, k, cfg, alg, d, nullptr, nullptr,
                           DomainMode::Parallel);
            expectStatsIdentical(serial, seq);
            expectStatsIdentical(seq, par, /*same_mode=*/false);
        }
    }
}

TEST(DomainModeParallel, BitIdenticalToSequencedWithFaultsInjected)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    PiumaConfig cfg;
    cfg.numCores = 8;
    FaultConfig fc;
    fc.seed = 17;
    fc.dramLatencyJitter = 0.2;
    fc.serviceRateJitter = 0.1;
    fc.networkLatencyJitter = 0.2;
    fc.dmaOverheadJitter = 0.1;
    fc.dramDropRate = 0.02;
    fc.dmaDropRate = 0.01;
    const SpmmRunStats serial =
        runSharded(csr, 16, cfg, SpmmAlgorithm::Dma, 1, &fc);
    EXPECT_GT(serial.retries, 0u); // the recovery protocol must fire
    for (const unsigned d : {2u, 4u, 8u}) {
        SCOPED_TRACE("domains=" + std::to_string(d));
        const SpmmRunStats seq =
            runSharded(csr, 16, cfg, SpmmAlgorithm::Dma, d, &fc);
        const SpmmRunStats par =
            runSharded(csr, 16, cfg, SpmmAlgorithm::Dma, d, &fc, nullptr,
                       DomainMode::Parallel);
        expectStatsIdentical(serial, seq);
        expectStatsIdentical(seq, par, /*same_mode=*/false);
    }
}

// Checkpoint JSONL bytes — what the CI fig8 smoke cmp's — must be
// identical between a sequenced and a parallel sweep, faults off and
// on (the parallel file is produced by threaded domain execution).
TEST(DomainModeParallel, CheckpointBytesMatchSequencedSweep)
{
    const graph::Csr csr = goldenGraph(7, 1200, 3);
    for (const bool faulted : {false, true}) {
        std::vector<std::string> bytes;
        for (const DomainMode mode :
             {DomainMode::Sequenced, DomainMode::Parallel}) {
            const std::string path = pgcn_test::testPath(
                std::string("mode_") +
                (mode == DomainMode::Parallel ? "par" : "seq") +
                (faulted ? "_faulted" : "_clean") + ".jsonl");
            parallel::SweepOptions options;
            options.jobs = 1;
            options.domains = 4;
            options.domainMode = mode;
            if (faulted) {
                FaultConfig fc;
                fc.seed = 7;
                fc.dramLatencyJitter = 0.15;
                fc.dramDropRate = 0.01;
                fc.dmaDropRate = 0.01;
                options.faults = fc;
            }
            parallel::SweepRunner runner(options);
            addSoakPoints(runner, csr);
            JsonlCheckpoint ckpt(path, /*resume=*/false);
            const parallel::SweepRunner::Outcome out = runner.run(ckpt);
            EXPECT_EQ(out.computed, soakConfigs().size());
            EXPECT_TRUE(out.errors.empty());
            bytes.push_back(slurp(path));
        }
        SCOPED_TRACE(faulted ? "faulted" : "clean");
        EXPECT_FALSE(bytes[0].empty());
        EXPECT_EQ(bytes[0], bytes[1]);
    }
}

// ---------------------------------------------------------------------------
// 2c. The domain plan: lookahead bound, auto heuristic, legality

TEST(DomainPlan, LookaheadBoundFollowsModelLatencies)
{
    PiumaConfig cfg;
    cfg.numCores = 8; // single die
    // Clean config: the bound is the min one-way network latency.
    EXPECT_DOUBLE_EQ(MemorySystem::modelLookaheadNs(cfg, nullptr),
                     cfg.netSameDieNs);
    // Jitter shrinks it to the worst-case early arrival.
    FaultConfig fc;
    fc.networkLatencyJitter = 0.5;
    EXPECT_DOUBLE_EQ(MemorySystem::modelLookaheadNs(cfg, &fc),
                     cfg.netSameDieNs * 0.5);
    // Drops arm timeouts at the *issue* timestamp, so the detection
    // edge bounds lookahead too: timeout - max request hop.
    fc.dramDropRate = 0.01;
    fc.timeoutNs = 500.0;
    PiumaConfig multi = cfg;
    multi.numCores = 16; // two dies: max hop is netCrossDieNs
    const double drop_edge = fc.timeoutNs - multi.netCrossDieNs * 1.5;
    EXPECT_DOUBLE_EQ(MemorySystem::modelLookaheadNs(multi, &fc),
                     std::min(multi.netSameDieNs * 0.5, drop_edge));
    // A single-core machine has no cross-domain traffic at all.
    PiumaConfig one;
    one.numCores = 1;
    EXPECT_TRUE(std::isinf(MemorySystem::modelLookaheadNs(one, nullptr)));
}

TEST(DomainPlan, AutoCountKeepsTinyRunsSerial)
{
    // The BENCH_PR9 lesson: sharding a 2-core model cost 14% wall
    // clock. Below 64 simulated cores auto must pick 1 domain.
    PiumaConfig cfg;
    cfg.numCores = 2;
    EXPECT_EQ(MemorySystem::autoDomainCount(cfg), 1u);
    cfg.numCores = 63;
    EXPECT_EQ(MemorySystem::autoDomainCount(cfg), 1u);
    cfg.numCores = 256;
    const unsigned host =
        std::max(1u, std::thread::hardware_concurrency());
    EXPECT_EQ(MemorySystem::autoDomainCount(cfg),
              std::clamp(std::min(256u / 16u, host), 1u, 64u));

    // Through domainPlan: domains == 0 expands via the heuristic and
    // Auto mode turns Parallel only when the plan shards at all.
    PiumaConfig tiny;
    tiny.numCores = 2;
    SimControls controls;
    controls.domains = 0;
    controls.domainMode = DomainMode::Auto;
    const DomainSet::Options plan =
        MemorySystem::domainPlan(tiny, &controls, false);
    EXPECT_EQ(plan.domains, 1u);
    EXPECT_EQ(plan.mode, DomainSet::Mode::Sequenced);
}

TEST(DomainPlan, AutoModeGoesParallelWhenLegal)
{
    PiumaConfig cfg;
    cfg.numCores = 8;
    SimControls controls;
    controls.domains = 4;
    controls.domainMode = DomainMode::Auto;
    const DomainSet::Options plan =
        MemorySystem::domainPlan(cfg, &controls, false);
    EXPECT_EQ(plan.domains, 4u);
    EXPECT_EQ(plan.mode, DomainSet::Mode::Parallel);
    EXPECT_DOUBLE_EQ(plan.lookaheadNs, cfg.netSameDieNs);
    // A sequenced-only attachment (telemetry session, monitor hub)
    // downgrades without error.
    const DomainSet::Options down =
        MemorySystem::domainPlan(cfg, &controls, true);
    EXPECT_EQ(down.mode, DomainSet::Mode::Sequenced);
}

TEST(DomainPlan, ExplicitParallelThrowsWhenModelMakesItIllegal)
{
    // Two dies + drops with a timeout shorter than the cross-die hop:
    // a retry re-arrival can precede the window edge, so the bound is
    // non-positive and an explicit --domain-mode=parallel must be a
    // loud ConfigError, never a silent downgrade.
    PiumaConfig cfg;
    cfg.numCores = 16;
    FaultConfig fc;
    fc.dramDropRate = 0.5;
    fc.timeoutNs = 100.0; // < netCrossDieNs = 250
    FaultInjector faults(fc);
    SimControls controls;
    controls.faults = &faults;
    controls.domains = 4;
    controls.domainMode = DomainMode::Parallel;
    EXPECT_THROW(MemorySystem::domainPlan(cfg, &controls, false),
                 ConfigError);
    // Auto with the same config quietly falls back to Sequenced.
    controls.domainMode = DomainMode::Auto;
    const DomainSet::Options plan =
        MemorySystem::domainPlan(cfg, &controls, false);
    EXPECT_EQ(plan.mode, DomainSet::Mode::Sequenced);
}

// ---------------------------------------------------------------------------
// 3. Parallel-mode clock protocol: property/stress tests

/**
 * A precomputed random message plan: one chain per domain, each hop
 * recording its execution time on the current domain and posting the
 * next hop cross-domain (or to itself) at now + delay, where every
 * delay is a small multiple of the lookahead — so hops posted at
 * exactly the lookahead boundary are common, delays are exact
 * doubles, and the expected arrival times can be recomputed serially
 * with identical rounding.
 */
struct MessagePlan
{
    double lookaheadNs = 1.0;
    /// dom[c][i]: domain executing hop i of chain c.
    std::vector<std::vector<unsigned>> dom;
    /// delay[c][i]: simulated gap between hop i and hop i+1 of chain
    /// c (multiples of lookaheadNs; the last hop's delay is unused).
    std::vector<std::vector<double>> delay;
    /// startNs[c]: simulated time of chain c's hop 0.
    std::vector<double> startNs;
};

MessagePlan
randomPlan(unsigned domains, unsigned hops, double lookahead_ns,
           uint64_t seed)
{
    std::mt19937_64 rng(seed);
    MessagePlan plan;
    plan.lookaheadNs = lookahead_ns;
    plan.dom.resize(domains);
    plan.delay.resize(domains);
    plan.startNs.resize(domains);
    for (unsigned c = 0; c < domains; ++c) {
        plan.startNs[c] = static_cast<double>(c + 1) * lookahead_ns;
        plan.dom[c].resize(hops);
        plan.delay[c].resize(hops);
        plan.dom[c][0] = c;
        for (unsigned i = 0; i < hops; ++i) {
            if (i + 1 < hops) {
                plan.dom[c][i + 1] = static_cast<unsigned>(rng() % domains);
            }
            // 1x the lookahead — the adversarial boundary — with
            // probability 1/2; else 2x or 3x.
            const uint64_t mult = 1 + (rng() % 2 != 0 ? 0 : rng() % 2 + 1);
            plan.delay[c][i] = static_cast<double>(mult) * lookahead_ns;
        }
    }
    return plan;
}

/**
 * Execute @p plan on a Parallel DomainSet and return the per-domain
 * execution-time logs. Each domain's log is written only by its own
 * worker thread; the join inside DomainSet::run orders the reads.
 */
std::vector<std::vector<double>>
runPlan(const MessagePlan &plan)
{
    DomainSet::Options opts;
    opts.domains = static_cast<unsigned>(plan.dom.size());
    opts.mode = DomainSet::Mode::Parallel;
    opts.lookaheadNs = plan.lookaheadNs;
    DomainSet set(opts);

    std::vector<std::vector<double>> times(opts.domains);
    auto fire = std::make_shared<std::function<void(unsigned, unsigned)>>();
    *fire = [&set, &plan, &times, fire](unsigned c, unsigned hop) {
        const unsigned cur = plan.dom[c][hop];
        times[cur].push_back(set.engine(cur).now());
        if (hop + 1 < plan.dom[c].size()) {
            const unsigned nxt = plan.dom[c][hop + 1];
            set.post(cur, nxt,
                     set.engine(cur).now() + plan.delay[c][hop],
                     [fire, c, hop] { (*fire)(c, hop + 1); });
        }
    };
    for (unsigned c = 0; c < opts.domains; ++c) {
        set.engine(plan.dom[c][0])
            .schedule(plan.startNs[c],
                      [fire, c] { (*fire)(c, 0u); });
    }
    set.run();
    return times;
}

/** Expected per-domain execution times, recomputed serially. */
std::vector<std::vector<double>>
expectedTimes(const MessagePlan &plan)
{
    std::vector<std::vector<double>> expected(plan.dom.size());
    for (size_t c = 0; c < plan.dom.size(); ++c) {
        double t = plan.startNs[c];
        for (size_t i = 0; i < plan.dom[c].size(); ++i) {
            expected[plan.dom[c][i]].push_back(t);
            t += plan.delay[c][i];
        }
    }
    for (auto &v : expected)
        std::sort(v.begin(), v.end());
    return expected;
}

// Randomized micro-topologies: every event must run at exactly its
// timestamp (bit-exact, since all times are sums of exact multiples
// of the lookahead accumulated in the same order), and each domain's
// dispatch log must be non-decreasing — no event ever executes ahead
// of one with a smaller timestamp on the same domain.
TEST(DomainParallel, RandomTopologiesExecuteInTimestampOrder)
{
    // 1.0 is the 1 ns adversarial lookahead from the issue; 0.5 and
    // 5.0 vary the boundary's binary representation and magnitude.
    for (const double lookahead : {1.0, 0.5, 5.0}) {
        for (uint64_t trial = 0; trial < 6; ++trial) {
            const unsigned domains = 2 + static_cast<unsigned>(trial % 3);
            const MessagePlan plan = randomPlan(
                domains, /*hops=*/40, lookahead, 1000 * trial + 11);
            SCOPED_TRACE("lookahead=" + std::to_string(lookahead) +
                         " trial=" + std::to_string(trial) +
                         " domains=" + std::to_string(domains));
            std::vector<std::vector<double>> times = runPlan(plan);
            for (const std::vector<double> &log : times) {
                for (size_t i = 1; i < log.size(); ++i)
                    EXPECT_LE(log[i - 1], log[i]);
            }
            for (auto &log : times)
                std::sort(log.begin(), log.end());
            EXPECT_EQ(times, expectedTimes(plan));
        }
    }
}

// Deterministic ping-pong at exactly the lookahead boundary: 100
// messages alternating between two domains, every hand-off posted at
// now + L precisely. The tightest legal schedule the protocol admits.
TEST(DomainParallel, LookaheadBoundaryPingPong)
{
    constexpr double kLookahead = 1.0; // 1 ns
    DomainSet::Options opts;
    opts.domains = 2;
    opts.mode = DomainSet::Mode::Parallel;
    opts.lookaheadNs = kLookahead;
    DomainSet set(opts);

    std::vector<std::vector<double>> times(2);
    auto fire = std::make_shared<std::function<void(unsigned, unsigned)>>();
    *fire = [&set, &times, fire](unsigned cur, unsigned hop) {
        times[cur].push_back(set.engine(cur).now());
        if (hop < 100) {
            set.post(cur, 1 - cur,
                     set.engine(cur).now() + kLookahead,
                     [fire, cur, hop] { (*fire)(1 - cur, hop + 1); });
        }
    };
    set.engine(0).schedule(kLookahead, [fire] { (*fire)(0u, 0u); });
    const SimTime end = set.run();
    EXPECT_DOUBLE_EQ(end, 101.0 * kLookahead);
    ASSERT_EQ(times[0].size(), 51u);
    ASSERT_EQ(times[1].size(), 50u);
    for (size_t i = 0; i < times[0].size(); ++i)
        EXPECT_EQ(times[0][i], (2.0 * static_cast<double>(i) + 1.0));
    for (size_t i = 0; i < times[1].size(); ++i)
        EXPECT_EQ(times[1][i], (2.0 * static_cast<double>(i) + 2.0));
    EXPECT_EQ(set.crossDomainPosts(), 100u);
}

// Null-message idle-advance: domains with no work (or which finish
// early) publish +inf and keep the barriers turning; a busy neighbor
// must run to completion without deadlock.
TEST(DomainParallel, IdleNeighborDoesNotDeadlock)
{
    DomainSet::Options opts;
    opts.domains = 3;
    opts.mode = DomainSet::Mode::Parallel;
    opts.lookaheadNs = 1.0;
    DomainSet set(opts);

    // Domain 1 finishes at t=3; domain 2 never has any work at all.
    unsigned busy_fired = 0;
    auto chain = std::make_shared<std::function<void(unsigned)>>();
    *chain = [&set, &busy_fired, chain](unsigned remaining) {
        ++busy_fired;
        if (remaining > 0) {
            set.engine(0).schedule(7.0, [chain, remaining] {
                (*chain)(remaining - 1);
            });
        }
    };
    set.engine(0).schedule(7.0, [chain] { (*chain)(49u); });
    bool short_fired = false;
    set.engine(1).schedule(3.0, [&short_fired] { short_fired = true; });

    const SimTime end = set.run();
    EXPECT_EQ(busy_fired, 50u);
    EXPECT_TRUE(short_fired);
    EXPECT_DOUBLE_EQ(end, 350.0);
}

Process
starvedConsumer(Engine &engine, BoundedQueue<int> &queue)
{
    co_await engine.announce("node1.starved-consumer");
    [[maybe_unused]] const int v = co_await queue.pop();
}

// A deadlock on one domain must surface as SimDeadlockError naming
// the blocked agent even though other domains drained cleanly — the
// blocked-agent sweep crosses every domain.
TEST(DomainParallel, DeadlockNamesAgentsAcrossDomains)
{
    DomainSet::Options opts;
    opts.domains = 2;
    opts.mode = DomainSet::Mode::Parallel;
    opts.lookaheadNs = 1.0;
    DomainSet set(opts);

    BoundedQueue<int> queue(set.engine(1), 4, "node1.orphan.queue");
    starvedConsumer(set.engine(1), queue);
    set.engine(0).schedule(5.0, [] {});
    try {
        set.run();
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        ASSERT_EQ(e.blocked().size(), 1u);
        EXPECT_EQ(e.blocked()[0].agent, "node1.starved-consumer");
        EXPECT_EQ(e.blocked()[0].resource,
                  "node1.orphan.queue (pop: queue empty)");
    }
}

// Same property in the model's Sequenced mode: the agent lives in
// shard 1's arena, the report must still resolve its name.
TEST(DomainSequenced, DeadlockNamesAgentsAcrossDomains)
{
    DomainSet set(2u);
    BoundedQueue<int> queue(set.engine(1), 4, "node1.orphan.queue");
    starvedConsumer(set.engine(1), queue);
    set.engine(0).schedule(5.0, [] {});
    try {
        set.run();
        FAIL() << "expected SimDeadlockError";
    } catch (const SimDeadlockError &e) {
        ASSERT_EQ(e.blocked().size(), 1u);
        EXPECT_EQ(e.blocked()[0].agent, "node1.starved-consumer");
    }
}

// An exception thrown by one domain's event must propagate out of
// run() (not hang the barrier protocol, not crash a worker thread).
TEST(DomainParallel, WorkerExceptionPropagates)
{
    DomainSet::Options opts;
    opts.domains = 2;
    opts.mode = DomainSet::Mode::Parallel;
    opts.lookaheadNs = 1.0;
    DomainSet set(opts);

    auto chain = std::make_shared<std::function<void(unsigned)>>();
    *chain = [&set, chain](unsigned remaining) {
        if (remaining > 0) {
            set.engine(0).schedule(2.0, [chain, remaining] {
                (*chain)(remaining - 1);
            });
        }
    };
    set.engine(0).schedule(2.0, [chain] { (*chain)(200u); });
    set.engine(1).schedule(5.0,
                           [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(set.run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// 4. The (timestamp, domain, sequence) merge tiebreak

// Two cross-domain events with equal timestamps from different source
// domains: the merge must order by source-domain index, regardless of
// which worker thread filled its mailbox first. Repeated to let the
// scheduler jitter the wall-clock arrival order.
TEST(DomainTiebreak, EqualTimestampsOrderBySourceDomain)
{
    for (unsigned iter = 0; iter < 50; ++iter) {
        DomainSet::Options opts;
        opts.domains = 3;
        opts.mode = DomainSet::Mode::Parallel;
        opts.lookaheadNs = 1.0;
        DomainSet set(opts);

        std::vector<unsigned> order; // written only by domain 0's thread
        // Both posts target domain 0 at the identical timestamp 1.0.
        // Domain 2 gets a head start in wall-clock terms (its event is
        // scheduled first) — the merge must still run domain 1's
        // message first.
        set.engine(2).schedule(0.0, [&set, &order] {
            set.post(2, 0, 1.0, [&order] { order.push_back(2); });
        });
        set.engine(1).schedule(0.0, [&set, &order] {
            set.post(1, 0, 1.0, [&order] { order.push_back(1); });
        });
        set.run();
        ASSERT_EQ(order.size(), 2u);
        EXPECT_EQ(order[0], 1u);
        EXPECT_EQ(order[1], 2u);
    }
}

// Equal timestamp, same source domain: source-sequence FIFO.
TEST(DomainTiebreak, EqualTimestampsSameSourceAreFifo)
{
    DomainSet::Options opts;
    opts.domains = 2;
    opts.mode = DomainSet::Mode::Parallel;
    opts.lookaheadNs = 1.0;
    DomainSet set(opts);

    std::vector<int> order;
    set.engine(1).schedule(0.0, [&set, &order] {
        set.post(1, 0, 2.0, [&order] { order.push_back(10); });
        set.post(1, 0, 2.0, [&order] { order.push_back(11); });
    });
    set.run();
    EXPECT_EQ(order, (std::vector<int>{10, 11}));
}

// Sequenced mode's tiebreak is the global schedule-time sequence
// number: two zero-delay cross-domain posts at the same timestamp
// dispatch in post order even though they land in different shards'
// arenas.
TEST(DomainTiebreak, SequencedZeroDelayPostsFollowGlobalOrder)
{
    DomainSet set(2u);
    std::vector<char> order;
    set.engine(0).schedule(5.0, [&set, &order] {
        // Zero-delay post into the *other* shard's arena...
        set.post(0, 1, 5.0, [&order] { order.push_back('A'); });
        // ...then a zero-delay post into our own arena. A must still
        // dispatch first: global (when, seq) ignores arena placement.
        set.post(0, 0, 5.0, [&order] { order.push_back('B'); });
    });
    set.run();
    EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

// ---------------------------------------------------------------------------
// 5. Clock plumbing: runUntil strictness and the awaitResponse fast path

TEST(DomainClock, RunUntilDispatchesStrictlyBeforeHorizon)
{
    Engine engine;
    std::vector<int> fired;
    engine.schedule(5.0, [&fired] { fired.push_back(5); });
    engine.schedule(10.0, [&fired] { fired.push_back(10); });
    engine.runUntil(10.0);
    EXPECT_EQ(fired, (std::vector<int>{5})); // 10.0 is NOT < horizon
    EXPECT_TRUE(engine.hasPending());
    engine.run();
    EXPECT_EQ(fired, (std::vector<int>{5, 10}));
}

// A response already due must replicate delayUntil's fast path: no
// suspension, no event, no sequence number consumed.
TEST(DomainClock, AwaitResponsePastDeadlineConsumesNothing)
{
    DomainSet set(2u);
    bool resumed = false;
    [](DomainSet &s, bool &done) -> Process {
        co_await s.awaitResponse(0, 1, -1.0);
        done = true;
    }(set, resumed);
    EXPECT_TRUE(resumed); // never suspended
    EXPECT_EQ(set.eventsProcessed(), 0u);
    EXPECT_EQ(set.crossDomainPosts(), 0u);
}

// A future response must be bit-for-bit the same as delayUntil on a
// serial engine — including the now + (when - now) rounding, which
// can differ from `when` by an ulp.
TEST(DomainClock, AwaitResponseMatchesDelayUntilBitExact)
{
    // Values chosen so `when - now` is inexact: the serial engine and
    // the sharded wake must round identically.
    const SimTime t0 = 1.0e6 / 3.0;
    const SimTime when = t0 + 1234.5 / 7.0;

    Engine ref;
    SimTime ref_at = 0.0;
    [](Engine &e, SimTime start, SimTime w, SimTime &out) -> Process {
        co_await e.delay(start);
        co_await e.delayUntil(w);
        out = e.now();
    }(ref, t0, when, ref_at);
    ref.run();

    DomainSet set(2u);
    SimTime dom_at = 0.0;
    [](DomainSet &s, SimTime start, SimTime w, SimTime &out) -> Process {
        co_await s.engine(1).delay(start);
        co_await s.awaitResponse(0, 1, w);
        out = s.engine(1).now();
    }(set, t0, when, dom_at);
    set.run();

    EXPECT_EQ(ref_at, dom_at); // exact double equality — bit identity
    EXPECT_EQ(ref.eventsProcessed(), set.eventsProcessed());
    EXPECT_EQ(set.crossDomainPosts(), 1u);
}

// Same-domain wakes are not cross-domain traffic.
TEST(DomainClock, SameDomainWakeNotCountedAsCrossPost)
{
    DomainSet set(2u);
    [](DomainSet &s) -> Process {
        co_await s.awaitResponse(1, 1, 4.0);
    }(set);
    set.run();
    EXPECT_EQ(set.crossDomainPosts(), 0u);
    EXPECT_EQ(set.eventsProcessed(), 1u);
    EXPECT_DOUBLE_EQ(set.now(), 4.0);
}

} // namespace
