/**
 * @file
 * Fault-injection soak tests. Fault injection perturbs *timings*, so
 * a perturbed run must still satisfy every conservation invariant of
 * the unperturbed model: slice controllers serve exactly the bytes
 * the programs requested, stall attribution stays within the thread
 * time available, and simulated time stays finite and positive. The
 * perturbation stream is seeded, so a faulted run must also be
 * bit-reproducible, and a null/zero injector must leave the golden
 * event stream untouched.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "piuma/config.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/fault.hpp"

namespace {

using namespace pgcn;
using piuma::PiumaConfig;
using piuma::SpmmAlgorithm;
using piuma::SpmmRunStats;
using sim::FaultConfig;
using sim::FaultInjector;
using sim::SimControls;

graph::Csr
soakGraph()
{
    // Small enough that 50 runs stay fast, big enough to exercise
    // every queue/resource path.
    return graph::normalizedAdjacency(
        graph::generateRmat(8, 4096, graph::rmatSkewed(), 42));
}

/**
 * The invariants every surviving run must satisfy — including runs
 * with hard drops, where served bytes legitimately exceed demanded
 * bytes by exactly the retried volume.
 */
void
checkInvariantsWithRecovery(const SpmmRunStats &s,
                            const PiumaConfig &cfg)
{
    ASSERT_TRUE(std::isfinite(s.makespanNs));
    EXPECT_GT(s.makespanNs, 0.0);
    EXPECT_GT(s.simEvents, 0u);

    EXPECT_GE(s.nnzStallNs, 0.0);
    EXPECT_GE(s.rowOffsetStallNs, 0.0);
    EXPECT_GE(s.featureStallNs, 0.0);
    EXPECT_GE(s.dmaQueueStallNs, 0.0);
    EXPECT_GE(s.issueNs, 0.0);
    const double accounted = s.nnzStallNs + s.rowOffsetStallNs +
                             s.featureStallNs + s.dmaQueueStallNs +
                             s.issueNs;
    const double available =
        static_cast<double>(cfg.totalThreads()) * s.makespanNs;
    EXPECT_LE(accounted, available * (1.0 + 1e-9));

    EXPECT_GE(s.memUtilization, 0.0);
    EXPECT_LE(s.memUtilization, 1.0 + 1e-9);
}

/** The invariants every run — faulted or not — must satisfy. */
void
checkInvariants(const SpmmRunStats &s, const PiumaConfig &cfg)
{
    ASSERT_TRUE(std::isfinite(s.makespanNs));
    EXPECT_GT(s.makespanNs, 0.0);
    EXPECT_GT(s.simEvents, 0u);

    // Conservation: bytes the slice controllers served == bytes the
    // programs requested. Fault injection changes *when*, never *how
    // much*.
    const double requested = s.bytesRead + s.bytesWritten;
    EXPECT_GT(requested, 0.0);
    EXPECT_NEAR(s.bytesServed, requested, 1e-6 * requested);

    // Stall attribution: non-negative, and the per-thread totals
    // cannot exceed the thread time physically available.
    EXPECT_GE(s.nnzStallNs, 0.0);
    EXPECT_GE(s.rowOffsetStallNs, 0.0);
    EXPECT_GE(s.featureStallNs, 0.0);
    EXPECT_GE(s.dmaQueueStallNs, 0.0);
    EXPECT_GE(s.issueNs, 0.0);
    const double accounted = s.nnzStallNs + s.rowOffsetStallNs +
                             s.featureStallNs + s.dmaQueueStallNs +
                             s.issueNs;
    const double available =
        static_cast<double>(cfg.totalThreads()) * s.makespanNs;
    EXPECT_LE(accounted, available * (1.0 + 1e-9));

    EXPECT_GE(s.memUtilization, 0.0);
    EXPECT_LE(s.memUtilization, 1.0 + 1e-9);
}

TEST(FaultSoak, FiftyRandomConfigsPreserveInvariants)
{
    const graph::Csr csr = soakGraph();
    // Fixed soak seed: a failure here reproduces exactly.
    std::mt19937_64 rng(20230419);
    std::uniform_real_distribution<double> jitter(0.0, 0.9);
    for (int i = 0; i < 50; ++i) {
        FaultConfig fc;
        fc.seed = rng();
        fc.dramLatencyJitter = jitter(rng);
        fc.serviceRateJitter = jitter(rng);
        fc.networkLatencyJitter = jitter(rng);
        fc.dmaOverheadJitter = jitter(rng);
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;

        PiumaConfig cfg;
        cfg.numCores = (i % 3 == 0) ? 4 : 8;
        const SpmmAlgorithm alg = (i % 2 == 0) ? SpmmAlgorithm::Dma
                                               : SpmmAlgorithm::LoopUnrolled;
        const SpmmRunStats s = simulateSpmm(csr, 16, cfg, alg, nullptr,
                                            &controls);
        SCOPED_TRACE("soak config #" + std::to_string(i) + " seed " +
                     std::to_string(fc.seed));
        checkInvariants(s, cfg);
        // The run actually consumed perturbation draws.
        EXPECT_GT(faults.draws(), 0u);
    }
}

TEST(FaultSoak, SameSeedBitReproducible)
{
    const graph::Csr csr = soakGraph();
    FaultConfig fc;
    fc.seed = 77;
    fc.dramLatencyJitter = 0.4;
    fc.serviceRateJitter = 0.3;
    fc.networkLatencyJitter = 0.5;
    fc.dmaOverheadJitter = 0.2;

    SpmmRunStats runs[2];
    uint64_t draws[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;
        PiumaConfig cfg;
        runs[i] = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma, nullptr,
                               &controls);
        draws[i] = faults.draws();
    }
    EXPECT_EQ(runs[0].makespanNs, runs[1].makespanNs); // bit-exact
    EXPECT_EQ(runs[0].simEvents, runs[1].simEvents);
    EXPECT_EQ(runs[0].bytesRead, runs[1].bytesRead);
    EXPECT_EQ(runs[0].nnzStallNs, runs[1].nnzStallNs);
    EXPECT_EQ(draws[0], draws[1]);
}

TEST(FaultSoak, DifferentSeedsPerturbDifferently)
{
    const graph::Csr csr = soakGraph();
    double makespans[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
        FaultConfig fc;
        fc.seed = (i == 0) ? 1 : 2;
        fc.dramLatencyJitter = 0.4;
        fc.serviceRateJitter = 0.4;
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;
        PiumaConfig cfg;
        makespans[i] = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma,
                                    nullptr, &controls)
                           .makespanNs;
    }
    EXPECT_NE(makespans[0], makespans[1]);
}

TEST(FaultSoak, DisabledInjectionMatchesBaselineExactly)
{
    const graph::Csr csr = soakGraph();
    PiumaConfig cfg;
    const SpmmRunStats base =
        simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);

    // Controls present but no injector attached.
    SimControls null_controls;
    const SpmmRunStats with_null = simulateSpmm(
        csr, 16, cfg, SpmmAlgorithm::Dma, nullptr, &null_controls);
    EXPECT_EQ(base.makespanNs, with_null.makespanNs);
    EXPECT_EQ(base.simEvents, with_null.simEvents);

    // Injector attached but every jitter zero: every hook is a no-op.
    FaultConfig zero;
    FaultInjector faults(zero);
    SimControls zero_controls;
    zero_controls.faults = &faults;
    const SpmmRunStats with_zero = simulateSpmm(
        csr, 16, cfg, SpmmAlgorithm::Dma, nullptr, &zero_controls);
    EXPECT_EQ(base.makespanNs, with_zero.makespanNs);
    EXPECT_EQ(base.simEvents, with_zero.simEvents);
    EXPECT_EQ(faults.draws(), 0u);
}

TEST(FaultSoak, RunLimitsThroughControlsAbortCleanly)
{
    const graph::Csr csr = soakGraph();
    PiumaConfig cfg;
    SimControls controls;
    controls.limits.maxEvents = 50; // far below what the run needs
    EXPECT_THROW(simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma, nullptr,
                              &controls),
                 sim::SimLimitError);
}

// ------------------------------------------------------------------
// Hard faults: dropped transactions/packets/descriptors and stuck
// cores, recovered by the modeled timeout/retry/backoff protocol.

/** Retry-conservation invariants a surviving hard-faulted run obeys. */
void
checkRecoveryInvariants(const SpmmRunStats &s)
{
    // Served bytes split exactly into demanded (goodput) and retried.
    EXPECT_NEAR(s.bytesServed, s.goodputBytes + s.retriedBytes,
                1e-6 * std::max(s.bytesServed, 1.0));
    EXPECT_NEAR(s.goodputBytes, s.bytesRead + s.bytesWritten,
                1e-6 * std::max(s.goodputBytes, 1.0));
    EXPECT_GE(s.retriedBytes, 0.0);
    // Every retry was triggered by a fired timeout or a stuck-core
    // reset; recovery time is non-negative and finite.
    EXPECT_GE(s.timeoutsFired + s.stuckResets, s.retries > 0 ? 1u : 0u);
    EXPECT_GE(s.recoveryNs, 0.0);
    ASSERT_TRUE(std::isfinite(s.recoveryNs));
}

TEST(HardFault, SoakFiftyConfigsConserveRetriedBytes)
{
    const graph::Csr csr = soakGraph();
    // Fixed soak seed: a failure here reproduces exactly. Rates stay
    // in the survivable regime (p^(R+1) x #requests << 1) so retry
    // exhaustion — tested separately — stays rare.
    std::mt19937_64 rng(20240817);
    std::uniform_real_distribution<double> rate(0.0, 0.03);
    int survived = 0;
    int faulted = 0;
    for (int i = 0; i < 50; ++i) {
        FaultConfig fc;
        fc.seed = rng();
        fc.dramDropRate = rate(rng);
        fc.netDropRate = rate(rng);
        fc.dmaDropRate = rate(rng);
        fc.stuckCoreRate = rate(rng);
        fc.maxRetries = 8;
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;

        PiumaConfig cfg;
        cfg.numCores = (i % 3 == 0) ? 4 : 8;
        const SpmmAlgorithm alg = (i % 2 == 0)
                                      ? SpmmAlgorithm::Dma
                                      : SpmmAlgorithm::LoopUnrolled;
        SCOPED_TRACE("hard-fault soak config #" + std::to_string(i) +
                     " seed " + std::to_string(fc.seed));
        try {
            const SpmmRunStats s =
                simulateSpmm(csr, 16, cfg, alg, nullptr, &controls);
            checkInvariantsWithRecovery(s, cfg);
            checkRecoveryInvariants(s);
            ++survived;
        } catch (const sim::SimFaultError &e) {
            // Retry exhaustion is a legal outcome: typed, sited,
            // never a deadlock.
            EXPECT_FALSE(e.site().empty());
            EXPECT_GT(e.attempts(), 1u);
            ++faulted;
        }
    }
    EXPECT_EQ(survived + faulted, 50);
    // At these rates nearly every config survives; the soak is about
    // surviving runs, so demand a healthy majority did.
    EXPECT_GE(survived, 40);
}

TEST(HardFault, SameSeedBitReproducible)
{
    const graph::Csr csr = soakGraph();
    FaultConfig fc;
    fc.seed = 99;
    fc.dramDropRate = 0.02;
    fc.netDropRate = 0.02;
    fc.dmaDropRate = 0.02;
    fc.stuckCoreRate = 0.01;
    fc.maxRetries = 10;

    SpmmRunStats runs[2];
    for (int i = 0; i < 2; ++i) {
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;
        PiumaConfig cfg;
        runs[i] = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma,
                               nullptr, &controls);
    }
    EXPECT_EQ(runs[0].makespanNs, runs[1].makespanNs); // bit-exact
    EXPECT_EQ(runs[0].retries, runs[1].retries);
    EXPECT_EQ(runs[0].timeoutsFired, runs[1].timeoutsFired);
    EXPECT_EQ(runs[0].stuckResets, runs[1].stuckResets);
    EXPECT_EQ(runs[0].retriedBytes, runs[1].retriedBytes);
    EXPECT_EQ(runs[0].recoveryNs, runs[1].recoveryNs);
    EXPECT_GT(runs[0].retries, 0u); // the drops actually happened
}

TEST(HardFault, ZeroRatesWithRecoveryKnobsMatchBaselineExactly)
{
    const graph::Csr csr = soakGraph();
    PiumaConfig cfg;
    const SpmmRunStats base =
        simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);

    // Recovery policy configured, every fault class at rate zero: no
    // RNG draw, no schedule change, bit-identical event stream.
    FaultConfig fc;
    fc.timeoutNs = 300.0;
    fc.backoffNs = 50.0;
    fc.maxRetries = 5;
    FaultInjector faults(fc);
    SimControls controls;
    controls.faults = &faults;
    const SpmmRunStats s = simulateSpmm(csr, 16, cfg,
                                        SpmmAlgorithm::Dma, nullptr,
                                        &controls);
    EXPECT_EQ(base.makespanNs, s.makespanNs);
    EXPECT_EQ(base.simEvents, s.simEvents);
    EXPECT_EQ(faults.draws(), 0u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.timeoutsFired, 0u);
    EXPECT_EQ(s.retriedBytes, 0.0);
}

TEST(HardFault, ExhaustedRetryBudgetRaisesTypedFault)
{
    const graph::Csr csr = soakGraph();
    FaultConfig fc;
    fc.dramDropRate = 1.0; // every attempt drops: unrecoverable
    fc.maxRetries = 2;
    FaultInjector faults(fc);
    SimControls controls;
    controls.faults = &faults;
    PiumaConfig cfg;
    try {
        simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma, nullptr,
                     &controls);
        FAIL() << "drop rate 1.0 must exhaust the retry budget";
    } catch (const sim::SimFaultError &e) {
        EXPECT_EQ(e.attempts(), fc.maxRetries + 1);
        EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
                  std::string::npos);
        EXPECT_FALSE(e.site().empty());
        EXPECT_GE(e.whenNs(), 0.0);
    }
}

TEST(HardFault, NoDropScheduleDeadlocks)
{
    // Property: whatever the drop rate, a run terminates — success or
    // SimFaultError. Never SimDeadlockError, never a hang (the oracle
    // timeout only arms on requests that actually drop, so the event
    // queue always drains).
    const graph::Csr csr = soakGraph();
    for (const double rate : {0.2, 0.5, 0.9, 1.0}) {
        for (const SpmmAlgorithm alg :
             {SpmmAlgorithm::Dma, SpmmAlgorithm::LoopUnrolled}) {
            FaultConfig fc;
            fc.seed = 7;
            fc.dramDropRate = rate;
            fc.netDropRate = rate;
            fc.dmaDropRate = rate;
            fc.maxRetries = 3;
            FaultInjector faults(fc);
            SimControls controls;
            controls.faults = &faults;
            PiumaConfig cfg;
            cfg.numCores = 4;
            SCOPED_TRACE("rate " + std::to_string(rate));
            try {
                const SpmmRunStats s = simulateSpmm(
                    csr, 16, cfg, alg, nullptr, &controls);
                checkRecoveryInvariants(s);
            } catch (const sim::SimFaultError &) {
                // Legal terminal outcome.
            } catch (const sim::SimDeadlockError &e) {
                FAIL() << "drop schedule deadlocked: " << e.what();
            }
        }
    }
}

} // namespace
