/**
 * @file
 * Fault-injection soak tests. Fault injection perturbs *timings*, so
 * a perturbed run must still satisfy every conservation invariant of
 * the unperturbed model: slice controllers serve exactly the bytes
 * the programs requested, stall attribution stays within the thread
 * time available, and simulated time stays finite and positive. The
 * perturbation stream is seeded, so a faulted run must also be
 * bit-reproducible, and a null/zero injector must leave the golden
 * event stream untouched.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "piuma/config.hpp"
#include "piuma/spmm_programs.hpp"
#include "sim/fault.hpp"

namespace {

using namespace pgcn;
using piuma::PiumaConfig;
using piuma::SpmmAlgorithm;
using piuma::SpmmRunStats;
using sim::FaultConfig;
using sim::FaultInjector;
using sim::SimControls;

graph::Csr
soakGraph()
{
    // Small enough that 50 runs stay fast, big enough to exercise
    // every queue/resource path.
    return graph::normalizedAdjacency(
        graph::generateRmat(8, 4096, graph::rmatSkewed(), 42));
}

/** The invariants every run — faulted or not — must satisfy. */
void
checkInvariants(const SpmmRunStats &s, const PiumaConfig &cfg)
{
    ASSERT_TRUE(std::isfinite(s.makespanNs));
    EXPECT_GT(s.makespanNs, 0.0);
    EXPECT_GT(s.simEvents, 0u);

    // Conservation: bytes the slice controllers served == bytes the
    // programs requested. Fault injection changes *when*, never *how
    // much*.
    const double requested = s.bytesRead + s.bytesWritten;
    EXPECT_GT(requested, 0.0);
    EXPECT_NEAR(s.bytesServed, requested, 1e-6 * requested);

    // Stall attribution: non-negative, and the per-thread totals
    // cannot exceed the thread time physically available.
    EXPECT_GE(s.nnzStallNs, 0.0);
    EXPECT_GE(s.rowOffsetStallNs, 0.0);
    EXPECT_GE(s.featureStallNs, 0.0);
    EXPECT_GE(s.dmaQueueStallNs, 0.0);
    EXPECT_GE(s.issueNs, 0.0);
    const double accounted = s.nnzStallNs + s.rowOffsetStallNs +
                             s.featureStallNs + s.dmaQueueStallNs +
                             s.issueNs;
    const double available =
        static_cast<double>(cfg.totalThreads()) * s.makespanNs;
    EXPECT_LE(accounted, available * (1.0 + 1e-9));

    EXPECT_GE(s.memUtilization, 0.0);
    EXPECT_LE(s.memUtilization, 1.0 + 1e-9);
}

TEST(FaultSoak, FiftyRandomConfigsPreserveInvariants)
{
    const graph::Csr csr = soakGraph();
    // Fixed soak seed: a failure here reproduces exactly.
    std::mt19937_64 rng(20230419);
    std::uniform_real_distribution<double> jitter(0.0, 0.9);
    for (int i = 0; i < 50; ++i) {
        FaultConfig fc;
        fc.seed = rng();
        fc.dramLatencyJitter = jitter(rng);
        fc.serviceRateJitter = jitter(rng);
        fc.networkLatencyJitter = jitter(rng);
        fc.dmaOverheadJitter = jitter(rng);
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;

        PiumaConfig cfg;
        cfg.numCores = (i % 3 == 0) ? 4 : 8;
        const SpmmAlgorithm alg = (i % 2 == 0) ? SpmmAlgorithm::Dma
                                               : SpmmAlgorithm::LoopUnrolled;
        const SpmmRunStats s = simulateSpmm(csr, 16, cfg, alg, nullptr,
                                            &controls);
        SCOPED_TRACE("soak config #" + std::to_string(i) + " seed " +
                     std::to_string(fc.seed));
        checkInvariants(s, cfg);
        // The run actually consumed perturbation draws.
        EXPECT_GT(faults.draws(), 0u);
    }
}

TEST(FaultSoak, SameSeedBitReproducible)
{
    const graph::Csr csr = soakGraph();
    FaultConfig fc;
    fc.seed = 77;
    fc.dramLatencyJitter = 0.4;
    fc.serviceRateJitter = 0.3;
    fc.networkLatencyJitter = 0.5;
    fc.dmaOverheadJitter = 0.2;

    SpmmRunStats runs[2];
    uint64_t draws[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;
        PiumaConfig cfg;
        runs[i] = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma, nullptr,
                               &controls);
        draws[i] = faults.draws();
    }
    EXPECT_EQ(runs[0].makespanNs, runs[1].makespanNs); // bit-exact
    EXPECT_EQ(runs[0].simEvents, runs[1].simEvents);
    EXPECT_EQ(runs[0].bytesRead, runs[1].bytesRead);
    EXPECT_EQ(runs[0].nnzStallNs, runs[1].nnzStallNs);
    EXPECT_EQ(draws[0], draws[1]);
}

TEST(FaultSoak, DifferentSeedsPerturbDifferently)
{
    const graph::Csr csr = soakGraph();
    double makespans[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
        FaultConfig fc;
        fc.seed = (i == 0) ? 1 : 2;
        fc.dramLatencyJitter = 0.4;
        fc.serviceRateJitter = 0.4;
        FaultInjector faults(fc);
        SimControls controls;
        controls.faults = &faults;
        PiumaConfig cfg;
        makespans[i] = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma,
                                    nullptr, &controls)
                           .makespanNs;
    }
    EXPECT_NE(makespans[0], makespans[1]);
}

TEST(FaultSoak, DisabledInjectionMatchesBaselineExactly)
{
    const graph::Csr csr = soakGraph();
    PiumaConfig cfg;
    const SpmmRunStats base =
        simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);

    // Controls present but no injector attached.
    SimControls null_controls;
    const SpmmRunStats with_null = simulateSpmm(
        csr, 16, cfg, SpmmAlgorithm::Dma, nullptr, &null_controls);
    EXPECT_EQ(base.makespanNs, with_null.makespanNs);
    EXPECT_EQ(base.simEvents, with_null.simEvents);

    // Injector attached but every jitter zero: every hook is a no-op.
    FaultConfig zero;
    FaultInjector faults(zero);
    SimControls zero_controls;
    zero_controls.faults = &faults;
    const SpmmRunStats with_zero = simulateSpmm(
        csr, 16, cfg, SpmmAlgorithm::Dma, nullptr, &zero_controls);
    EXPECT_EQ(base.makespanNs, with_zero.makespanNs);
    EXPECT_EQ(base.simEvents, with_zero.simEvents);
    EXPECT_EQ(faults.draws(), 0u);
}

TEST(FaultSoak, RunLimitsThroughControlsAbortCleanly)
{
    const graph::Csr csr = soakGraph();
    PiumaConfig cfg;
    SimControls controls;
    controls.limits.maxEvents = 50; // far below what the run needs
    EXPECT_THROW(simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma, nullptr,
                              &controls),
                 sim::SimLimitError);
}

} // namespace
