/**
 * @file
 * Tests for the runtime SIMD dispatch layer. Dispatch mechanics
 * (detection, forcing, env override fallback) are checked directly;
 * every kernel in the Ops table is property-tested against a plain
 * scalar re-implementation, for EVERY tier available on the host, so
 * a wrong tail path or a bad FMA grouping in one backend fails by
 * name. Widths straddle all tail regimes: sub-lane, one lane, 4-lane
 * unroll boundary, and large-prime.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "kernels/simd.hpp"

namespace {

using namespace pgcn::kernels;
using simd::Ops;
using simd::Tier;

/** FMA-tolerant elementwise comparison for raw buffers. */
void
expectClose(const float *got, const float *want, uint64_t n,
            float rtol = 1e-5f, float atol = 1e-6f)
{
    for (uint64_t i = 0; i < n; ++i) {
        const float tol = atol + rtol * std::abs(want[i]);
        ASSERT_NEAR(got[i], want[i], tol) << "at element " << i;
    }
}

std::vector<float>
randomVec(uint64_t n, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> v(n);
    for (auto &x : v)
        x = dist(rng);
    return v;
}

// Widths chosen to straddle every tail regime of every tier: scalar
// remainders, exactly one vector, the 4-register unroll boundary
// (4*16 = 64 for AVX-512), and a large prime.
const uint64_t kWidths[] = {1, 2, 7, 8, 15, 16, 17, 31, 32,
                            33, 63, 64, 65, 128, 257};

// --------------------------------------------------------- dispatch

TEST(SimdDispatch, ScalarTierAlwaysAvailable)
{
    const auto tiers = simd::availableTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_NE(std::find(tiers.begin(), tiers.end(), Tier::Scalar),
              tiers.end());
}

TEST(SimdDispatch, BestTierIsAvailable)
{
    const auto tiers = simd::availableTiers();
    EXPECT_NE(std::find(tiers.begin(), tiers.end(),
                        simd::detectBestTier()),
              tiers.end());
}

TEST(SimdDispatch, ForceTierPinsActiveTable)
{
    for (Tier t : simd::availableTiers()) {
        simd::forceTier(t);
        EXPECT_EQ(simd::activeTier(), t);
        EXPECT_EQ(simd::ops().tier, t);
    }
    simd::resetTier();
    // A PGCN_SIMD override (e.g. the forced-scalar CI job) governs
    // what reset resolves to; only the auto path picks the best tier.
    const char *env = std::getenv("PGCN_SIMD");
    if (env == nullptr || std::string_view(env) == "auto") {
        EXPECT_EQ(simd::activeTier(), simd::detectBestTier());
    } else {
        EXPECT_EQ(std::string_view(simd::tierName(simd::activeTier())),
                  std::string_view(env));
    }
}

TEST(SimdDispatch, OpsForReturnsMatchingTier)
{
    for (Tier t : simd::availableTiers()) {
        const Ops &ops = simd::opsFor(t);
        EXPECT_EQ(ops.tier, t);
        EXPECT_GE(ops.width, 1u);
        EXPECT_NE(ops.axpy, nullptr);
        EXPECT_NE(ops.spmmRowRange, nullptr);
        EXPECT_NE(ops.spmmGatherRows, nullptr);
        EXPECT_NE(ops.relu, nullptr);
        EXPECT_NE(ops.addBias, nullptr);
        EXPECT_NE(ops.gemmPackB, nullptr);
        EXPECT_NE(ops.gemmPrepacked, nullptr);
    }
}

TEST(SimdDispatch, TierNamesAreStable)
{
    EXPECT_STREQ(simd::tierName(Tier::Scalar), "scalar");
    EXPECT_STREQ(simd::tierName(Tier::Avx2), "avx2");
    EXPECT_STREQ(simd::tierName(Tier::Avx512), "avx512");
}

TEST(SimdDispatch, ScalarWidthIsOne)
{
    EXPECT_EQ(simd::opsFor(Tier::Scalar).width, 1u);
}

TEST(SimdAligned, BuffersAre64ByteAligned)
{
    for (uint64_t n : {1u, 7u, 64u, 1000u}) {
        auto buf = simd::makeAlignedBuffer(n);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.get()) % 64, 0u);
    }
}

// ------------------------------------------- per-tier kernel checks

/** Runs every Ops kernel against a scalar oracle on one tier. */
class SimdTierKernels : public ::testing::TestWithParam<Tier>
{
  protected:
    const Ops &
    ops() const
    {
        return simd::opsFor(GetParam());
    }
};

TEST_P(SimdTierKernels, AxpyMatchesScalarLoop)
{
    for (uint64_t k : kWidths) {
        const auto x = randomVec(k, 11);
        auto y = randomVec(k, 22);
        auto want = y;
        const float w = 0.37f;
        for (uint64_t j = 0; j < k; ++j)
            want[j] += w * x[j];
        ops().axpy(y.data(), x.data(), w, k);
        expectClose(y.data(), want.data(), k);
    }
}

TEST_P(SimdTierKernels, ReluClampsNegatives)
{
    for (uint64_t n : kWidths) {
        auto v = randomVec(n, 33);
        auto want = v;
        for (auto &x : want)
            x = std::max(x, 0.0f);
        ops().relu(v.data(), n);
        expectClose(v.data(), want.data(), n, 0.0f, 0.0f);
    }
}

TEST_P(SimdTierKernels, AddBiasBroadcastsPerColumn)
{
    for (uint64_t cols : kWidths) {
        const uint64_t rows = 5;
        auto m = randomVec(rows * cols, 44);
        const auto bias = randomVec(cols, 55);
        auto want = m;
        for (uint64_t r = 0; r < rows; ++r)
            for (uint64_t c = 0; c < cols; ++c)
                want[r * cols + c] += bias[c];
        ops().addBias(m.data(), bias.data(), rows, cols);
        expectClose(m.data(), want.data(), rows * cols);
    }
}

namespace csr {

/** A tiny hand-rolled CSR exercising empty rows and a dense row. */
struct Fixture
{
    std::vector<uint64_t> offsets;
    std::vector<uint32_t> cols;
    std::vector<float> vals;
    uint64_t rows;
    uint64_t numIn; ///< number of input feature rows
};

Fixture
adversarial()
{
    // Rows: [0] two edges, [1] empty, [2] dense (all 8 inputs),
    // [3] empty, [4] one edge, [5] empty (trailing).
    Fixture f;
    f.rows = 6;
    f.numIn = 8;
    f.offsets = {0, 2, 2, 10, 10, 11, 11};
    f.cols = {1, 5, 0, 1, 2, 3, 4, 5, 6, 7, 7};
    f.vals = randomVec(11, 66);
    return f;
}

std::vector<float>
referenceSpmm(const Fixture &f, const std::vector<float> &h, uint64_t k)
{
    std::vector<float> out(f.rows * k, 0.0f);
    for (uint64_t u = 0; u < f.rows; ++u)
        for (uint64_t e = f.offsets[u]; e < f.offsets[u + 1]; ++e)
            for (uint64_t j = 0; j < k; ++j)
                out[u * k + j] += f.vals[e] * h[f.cols[e] * k + j];
    return out;
}

} // namespace csr

TEST_P(SimdTierKernels, SpmmRowRangeMatchesScalar)
{
    const auto f = csr::adversarial();
    for (uint64_t k : kWidths) {
        const auto h = randomVec(f.numIn * k, 77);
        const auto want = csr::referenceSpmm(f, h, k);
        // Poison the output: overwrite semantics must zero empty rows.
        std::vector<float> out(f.rows * k, 123.0f);
        ops().spmmRowRange(out.data(), h.data(), k, f.offsets.data(),
                           f.cols.data(), f.vals.data(), 0, f.rows, 0);
        expectClose(out.data(), want.data(), f.rows * k, 1e-4f, 1e-5f);
    }
}

TEST_P(SimdTierKernels, SpmmRowRangeHonoursOutRowBase)
{
    const auto f = csr::adversarial();
    const uint64_t k = 17;
    const auto h = randomVec(f.numIn * k, 88);
    const auto want = csr::referenceSpmm(f, h, k);
    // Compute rows [2, 5) into a 3-row tile based at row 2.
    std::vector<float> tile(3 * k, -7.0f);
    ops().spmmRowRange(tile.data(), h.data(), k, f.offsets.data(),
                       f.cols.data(), f.vals.data(), 2, 5,
                       /*out_row_base=*/2);
    expectClose(tile.data(), want.data() + 2 * k, 3 * k, 1e-4f, 1e-5f);
}

TEST_P(SimdTierKernels, SpmmGatherRowsAccumulates)
{
    // Tile-local view: 3 gathered rows mapping to output rows
    // {4, 0, 2}, accumulating on top of existing output content.
    const uint64_t k = 33;
    const uint64_t num_in = 6;
    const uint64_t num_out = 5;
    std::vector<uint32_t> row_ids = {4, 0, 2};
    std::vector<uint64_t> offsets = {0, 2, 2, 5}; // middle row empty
    std::vector<uint32_t> cols = {1, 3, 0, 2, 5};
    const auto vals = randomVec(5, 99);
    const auto h = randomVec(num_in * k, 111);
    auto out = randomVec(num_out * k, 222);
    auto want = out;
    for (uint64_t i = 0; i < row_ids.size(); ++i)
        for (uint64_t e = offsets[i]; e < offsets[i + 1]; ++e)
            for (uint64_t j = 0; j < k; ++j)
                want[row_ids[i] * k + j] += vals[e] * h[cols[e] * k + j];
    ops().spmmGatherRows(out.data(), h.data(), k, row_ids.data(),
                         offsets.data(), cols.data(), vals.data(), 0,
                         row_ids.size());
    expectClose(out.data(), want.data(), num_out * k, 1e-4f, 1e-5f);
}

namespace gemm {

std::vector<float>
reference(const std::vector<float> &a, const std::vector<float> &b,
          std::vector<float> c, uint64_t m, uint64_t n, uint64_t kk,
          bool accumulate)
{
    if (!accumulate)
        std::fill(c.begin(), c.end(), 0.0f);
    for (uint64_t i = 0; i < m; ++i)
        for (uint64_t p = 0; p < kk; ++p)
            for (uint64_t j = 0; j < n; ++j)
                c[i * n + j] += a[i * kk + p] * b[p * n + j];
    return c;
}

} // namespace gemm

TEST_P(SimdTierKernels, PackedGemmMatchesScalarTripleLoop)
{
    // Shapes straddle the 6-row microkernel and both panel tails,
    // plus KC-crossing depths (kk > 256).
    const struct
    {
        uint64_t m, n, kk;
    } shapes[] = {{1, 1, 1},   {6, 16, 8},   {7, 17, 9},
                  {5, 1, 3},   {13, 31, 64}, {64, 64, 64},
                  {6, 32, 300}, {23, 40, 257}, {3, 100, 7}};
    for (const auto &s : shapes) {
        for (bool accumulate : {false, true}) {
            const auto a = randomVec(s.m * s.kk, 1);
            const auto b = randomVec(s.kk * s.n, 2);
            auto c = randomVec(s.m * s.n, 3);
            const auto want =
                gemm::reference(a, b, c, s.m, s.n, s.kk, accumulate);
            auto pack = simd::makeAlignedBuffer(
                simd::gemmPackBufferElems(s.n, s.kk));
            ops().gemmPackB(b.data(), s.n, s.n, s.kk, pack.get());
            ops().gemmPrepacked(a.data(), s.kk, pack.get(), c.data(),
                                s.n, s.m, s.n, s.kk, accumulate);
            expectClose(c.data(), want.data(), s.m * s.n, 1e-4f,
                        1e-5f);
        }
    }
}

TEST_P(SimdTierKernels, PackedGemmZeroDepthZeroesOrKeepsC)
{
    const uint64_t m = 4, n = 9;
    auto pack =
        simd::makeAlignedBuffer(simd::gemmPackBufferElems(n, 0) + 1);
    auto c = randomVec(m * n, 4);
    auto kept = c;
    ops().gemmPrepacked(nullptr, 0, pack.get(), c.data(), n, m, n, 0,
                        /*accumulate=*/true);
    expectClose(c.data(), kept.data(), m * n, 0.0f, 0.0f);
    ops().gemmPrepacked(nullptr, 0, pack.get(), c.data(), n, m, n, 0,
                        /*accumulate=*/false);
    for (uint64_t i = 0; i < m * n; ++i)
        ASSERT_EQ(c[i], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    AvailableTiers, SimdTierKernels,
    ::testing::ValuesIn(simd::availableTiers()),
    [](const ::testing::TestParamInfo<Tier> &info) {
        return std::string(simd::tierName(info.param));
    });

} // namespace
