/**
 * @file
 * Unit and property tests for src/graph: COO cleaning passes, CSR
 * construction and invariants, GCN normalisation, generators, dataset
 * catalog and proxy builder.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/normalize.hpp"

namespace {

using namespace pgcn::graph;

Coo
triangleGraph()
{
    Coo coo(3);
    coo.addEdge(0, 1);
    coo.addEdge(1, 2);
    coo.addEdge(2, 0);
    return coo;
}

TEST(Coo, AddAndCount)
{
    Coo coo = triangleGraph();
    EXPECT_EQ(coo.numVertices(), 3u);
    EXPECT_EQ(coo.numEdges(), 3u);
}

TEST(Coo, SortCombinesDuplicates)
{
    Coo coo(2);
    coo.addEdge(0, 1, 1.0f);
    coo.addEdge(0, 1, 2.5f);
    coo.addEdge(1, 0, 1.0f);
    coo.sortAndCombineDuplicates();
    ASSERT_EQ(coo.numEdges(), 2u);
    EXPECT_FLOAT_EQ(coo.edges()[0].weight, 3.5f);
}

TEST(Coo, SymmetrizeAddsReverseEdges)
{
    Coo coo(3);
    coo.addEdge(0, 1);
    coo.addEdge(0, 2);
    coo.symmetrize();
    EXPECT_EQ(coo.numEdges(), 4u);
    std::set<std::pair<VertexId, VertexId>> have;
    for (const auto &e : coo.edges())
        have.insert({e.src, e.dst});
    EXPECT_TRUE(have.count({1, 0}));
    EXPECT_TRUE(have.count({2, 0}));
}

TEST(Coo, SymmetrizeIdempotentOnSymmetricInput)
{
    Coo coo(3);
    coo.addEdge(0, 1);
    coo.addEdge(1, 0);
    coo.symmetrize();
    // (0,1) and (1,0) each gain a reverse duplicate which merges:
    // weights double but the structure stays 2 edges.
    EXPECT_EQ(coo.numEdges(), 2u);
}

TEST(Coo, SelfLoopRoundTrip)
{
    Coo coo = triangleGraph();
    coo.addSelfLoops();
    EXPECT_EQ(coo.numEdges(), 6u);
    coo.removeSelfLoops();
    EXPECT_EQ(coo.numEdges(), 3u);
}

TEST(Csr, FromCooBasicStructure)
{
    Csr csr(triangleGraph());
    EXPECT_EQ(csr.numVertices(), 3u);
    EXPECT_EQ(csr.numEdges(), 3u);
    EXPECT_EQ(csr.degree(0), 1u);
    EXPECT_EQ(csr.rowCols(0)[0], 1u);
    EXPECT_EQ(csr.rowCols(1)[0], 2u);
    EXPECT_EQ(csr.rowCols(2)[0], 0u);
}

TEST(Csr, EmptyRowsHandled)
{
    Coo coo(4);
    coo.addEdge(0, 3);
    coo.addEdge(3, 0);
    Csr csr(coo);
    EXPECT_EQ(csr.degree(1), 0u);
    EXPECT_EQ(csr.degree(2), 0u);
    EXPECT_EQ(csr.numEdges(), 2u);
}

TEST(Csr, DensityAndDegree)
{
    Csr csr(triangleGraph());
    EXPECT_DOUBLE_EQ(csr.density(), 3.0 / 9.0);
    EXPECT_DOUBLE_EQ(csr.averageDegree(), 1.0);
}

TEST(Csr, RowOfEdgeMatchesLinearScan)
{
    Coo coo = generateUniform(50, 400, 7);
    Csr csr(coo);
    for (EdgeId e = 0; e < csr.numEdges(); ++e) {
        const VertexId u = csr.rowOfEdge(e);
        EXPECT_LE(csr.rowOffsets()[u], e);
        EXPECT_LT(e, csr.rowOffsets()[u + 1]);
    }
}

TEST(Csr, RowOfEdgeSkipsEmptyRows)
{
    Coo coo(5);
    coo.addEdge(0, 1);
    coo.addEdge(4, 2); // rows 1..3 empty
    Csr csr(coo);
    EXPECT_EQ(csr.rowOfEdge(0), 0u);
    EXPECT_EQ(csr.rowOfEdge(1), 4u);
}

TEST(Normalize, ValuesAreInverseSqrtDegreeProducts)
{
    Coo coo = generateRmat(8, 2000, rmatSkewed(), 3);
    Csr norm = normalizedAdjacency(coo);
    for (VertexId u = 0; u < norm.numVertices(); ++u) {
        const double du = static_cast<double>(norm.degree(u));
        auto cols = norm.rowCols(u);
        auto vals = norm.rowVals(u);
        for (size_t i = 0; i < cols.size(); ++i) {
            const double dv = static_cast<double>(norm.degree(cols[i]));
            EXPECT_NEAR(vals[i], 1.0 / std::sqrt(du * dv), 1e-6)
                << "edge " << u << "->" << cols[i];
            EXPECT_GT(vals[i], 0.0f);
            EXPECT_LE(vals[i], 1.0f);
        }
    }
}

TEST(Normalize, SymmetricValues)
{
    Coo coo(4);
    coo.addEdge(0, 1);
    coo.addEdge(1, 2);
    coo.addEdge(2, 3);
    Csr norm = normalizedAdjacency(coo);
    // A~[u][v] == A~[v][u] for the symmetric normalisation.
    for (VertexId u = 0; u < norm.numVertices(); ++u) {
        auto cols = norm.rowCols(u);
        auto vals = norm.rowVals(u);
        for (size_t i = 0; i < cols.size(); ++i) {
            const VertexId v = cols[i];
            auto vcols = norm.rowCols(v);
            auto vvals = norm.rowVals(v);
            bool found = false;
            for (size_t j = 0; j < vcols.size(); ++j) {
                if (vcols[j] == u) {
                    EXPECT_FLOAT_EQ(vals[i], vvals[j]);
                    found = true;
                }
            }
            EXPECT_TRUE(found) << "missing reverse edge " << v << "->" << u;
        }
    }
}

TEST(Normalize, IsolatedVertexGetsUnitSelfLoop)
{
    Coo coo(3);
    coo.addEdge(0, 1); // vertex 2 isolated
    Csr norm = normalizedAdjacency(coo);
    // Isolated vertex has only its self loop, normalised to 1/1.
    EXPECT_EQ(norm.degree(2), 1u);
    EXPECT_FLOAT_EQ(norm.rowVals(2)[0], 1.0f);
}

TEST(Generators, RmatDeterministic)
{
    Coo a = generateRmat(6, 500, rmatSkewed(), 9);
    Coo b = generateRmat(6, 500, rmatSkewed(), 9);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    EXPECT_TRUE(a.edges() == b.edges());
}

TEST(Generators, RmatEdgeCountAndBounds)
{
    Coo coo = generateRmat(7, 1000, rmatSkewed(), 1);
    EXPECT_EQ(coo.numVertices(), 128u);
    EXPECT_EQ(coo.numEdges(), 1000u);
    for (const auto &e : coo.edges()) {
        EXPECT_LT(e.src, 128u);
        EXPECT_LT(e.dst, 128u);
    }
}

TEST(Generators, SkewedHasHigherVarianceThanUniform)
{
    const EdgeId edges = 1u << 14;
    Csr skewed(generateRmat(10, edges, rmatSkewed(), 5));
    Csr uniform(generateRmat(10, edges, rmatUniform(), 5));
    const auto s = degreeStats(skewed);
    const auto u = degreeStats(uniform);
    EXPECT_GT(s.coefficientOfVariation, 2.0 * u.coefficientOfVariation);
    EXPECT_GT(s.gini, u.gini);
}

TEST(Generators, UniformDeterministicAndBounded)
{
    Coo a = generateUniform(100, 500, 3);
    Coo b = generateUniform(100, 500, 3);
    EXPECT_TRUE(a.edges() == b.edges());
    for (const auto &e : a.edges()) {
        EXPECT_LT(e.src, 100u);
        EXPECT_LT(e.dst, 100u);
    }
}

TEST(Datasets, TableOneCatalog)
{
    const auto &ogb = ogbDatasets();
    ASSERT_EQ(ogb.size(), 9u);
    EXPECT_EQ(ogb.front().name, "ddi");
    EXPECT_EQ(ogb.front().numVertices, 4267u);
    EXPECT_EQ(ogb.front().numEdges, 1334889u);
    EXPECT_EQ(ogb.back().name, "papers");
    EXPECT_EQ(ogb.back().numVertices, 111059956u);
    EXPECT_EQ(ogb.back().numEdges, 1615685872u);
}

TEST(Datasets, LookupByName)
{
    const auto &d = datasetByName("products");
    EXPECT_EQ(d.numVertices, 2449029u);
    EXPECT_EQ(d.numEdges, 61859140u);
}

TEST(Datasets, PowerGraphsPresent)
{
    EXPECT_EQ(datasetByName("power-16").numVertices, uint64_t{1} << 16);
    EXPECT_EQ(datasetByName("power-22").numVertices, uint64_t{1} << 22);
    EXPECT_EQ(allDatasets().size(), 11u);
}

TEST(Datasets, ProxyRespectsEdgeBudget)
{
    const auto proxy = buildProxy(datasetByName("products"), 1u << 14, 1);
    // Normalisation roughly doubles directed edges and adds loops;
    // allow generous slack but verify the down-scale happened.
    EXPECT_LT(proxy.adjacency.numEdges(), (1u << 14) * 4u);
    EXPECT_GT(proxy.scaleFactor, 1000.0);
}

TEST(Datasets, ProxyPreservesAverageDegreeWithinFactor)
{
    const auto &info = datasetByName("products");
    const auto proxy = buildProxy(info, 1u << 16, 1);
    const double published_degree =
        static_cast<double>(info.numEdges) /
        static_cast<double>(info.numVertices);
    const double proxy_degree = proxy.adjacency.averageDegree();
    // Symmetrization + self loops inflate degree up to ~2x + 1;
    // RMAT power-of-two rounding can shrink it. Check the ballpark.
    EXPECT_GT(proxy_degree, published_degree / 4.0);
    EXPECT_LT(proxy_degree, published_degree * 4.0);
}

TEST(Datasets, SmallGraphProxyIsFullScale)
{
    const auto proxy = buildProxy(datasetByName("ddi"), 1u << 22, 1);
    EXPECT_DOUBLE_EQ(proxy.scaleFactor, 1.0);
}

TEST(GraphStats, UniformDegreesGiniNearZero)
{
    // A ring: every vertex has degree exactly 1 -> gini == 0.
    Coo coo(64);
    for (VertexId v = 0; v < 64; ++v)
        coo.addEdge(v, (v + 1) % 64);
    const auto stats = degreeStats(Csr(coo));
    EXPECT_DOUBLE_EQ(stats.mean, 1.0);
    EXPECT_NEAR(stats.gini, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(stats.coefficientOfVariation, 0.0);
}

TEST(GraphStats, StarGraphIsMaximallySkewed)
{
    Coo coo(100);
    for (VertexId v = 1; v < 100; ++v)
        coo.addEdge(0, v);
    const auto stats = degreeStats(Csr(coo));
    EXPECT_GT(stats.gini, 0.95);
    EXPECT_DOUBLE_EQ(stats.maxDegree, 99.0);
    EXPECT_NEAR(stats.fracIsolated, 0.99, 0.001);
}

} // namespace

// ----------------------------------------------------- partitioning

#include "graph/partition.hpp"

namespace {

using namespace pgcn::graph;

TEST(Partition, HashCoversAllParts)
{
    const auto assignment = hashPartition(10000, 8);
    ASSERT_EQ(assignment.size(), 10000u);
    std::vector<int> counts(8, 0);
    for (unsigned p : assignment) {
        ASSERT_LT(p, 8u);
        ++counts[p];
    }
    for (int c : counts)
        EXPECT_GT(c, 10000 / 8 / 2); // roughly balanced
}

TEST(Partition, SinglePartHasNoCut)
{
    Coo coo = generateRmat(8, 2000, rmatSkewed(), 4);
    Csr csr(coo);
    const auto stats =
        evaluatePartition(csr, hashPartition(csr.numVertices(), 1), 1);
    EXPECT_EQ(stats.cutEdges, 0u);
    EXPECT_DOUBLE_EQ(stats.cutFraction, 0.0);
    EXPECT_DOUBLE_EQ(stats.replicationFactor, 1.0);
}

TEST(Partition, RangePartitionIsMonotoneAndComplete)
{
    Coo coo = generateRmat(9, 4000, rmatSkewed(), 5);
    Csr csr(coo);
    const auto assignment = rangePartitionByEdges(csr, 4);
    ASSERT_EQ(assignment.size(), csr.numVertices());
    for (size_t v = 1; v < assignment.size(); ++v)
        EXPECT_GE(assignment[v], assignment[v - 1]);
    EXPECT_EQ(assignment.back(), 3u);
}

TEST(Partition, RangeBalancesEdgesBetterThanVertexSkew)
{
    // On a skewed graph, balancing by edges keeps the max part load
    // close to the average.
    Coo coo = generateRmat(10, 20000, rmatSkewed(), 6);
    Csr csr(coo);
    const auto stats = evaluatePartition(
        csr, rangePartitionByEdges(csr, 8), 8);
    EXPECT_LT(stats.maxLoadImbalance, 2.0);
    EXPECT_GE(stats.maxLoadImbalance, 1.0);
}

TEST(Partition, CutFractionGrowsWithParts)
{
    Coo coo = generateRmat(10, 20000, rmatSkewed(), 7);
    Csr csr = normalizedAdjacency(coo);
    const auto s2 =
        evaluatePartition(csr, hashPartition(csr.numVertices(), 2), 2);
    const auto s16 =
        evaluatePartition(csr, hashPartition(csr.numVertices(), 16), 16);
    EXPECT_GT(s16.cutFraction, s2.cutFraction);
    EXPECT_GT(s16.replicationFactor, s2.replicationFactor);
}

TEST(Partition, HashCutMatchesExpectationOnRandomGraph)
{
    // With random hashing into p parts, an edge is cut with
    // probability (p-1)/p.
    Coo coo = generateUniform(2000, 40000, 8);
    Csr csr(coo);
    const auto stats =
        evaluatePartition(csr, hashPartition(csr.numVertices(), 4), 4);
    EXPECT_NEAR(stats.cutFraction, 0.75, 0.02);
}

TEST(Partition, GhostBytesArithmetic)
{
    PartitionStats stats;
    stats.replicationFactor = 1.5;
    // 1000 vertices, K=8: ghosts = 0.5 * 1000 rows of 32 B.
    EXPECT_DOUBLE_EQ(ghostExchangeBytes(stats, 1000, 8), 500.0 * 32.0);
}

} // namespace

// ------------------------------------------------------- persistence

#include <cstdio>
#include <fstream>

#include "graph/io.hpp"
#include "graph/normalize.hpp"
#include "test_paths.hpp"

namespace {

using namespace pgcn::graph;

class IoFixture : public ::testing::Test
{
  protected:
    std::string
    tempPath(const char *suffix)
    {
        // Unique per test and process: ctest -j shards must not race
        // on these files.
        return pgcn_test::testPath(suffix);
    }
};

TEST_F(IoFixture, EdgeListRoundTrip)
{
    Coo original = generateRmat(7, 800, rmatSkewed(), 12);
    const auto path = tempPath("edges.txt");
    saveEdgeListText(original, path);
    Coo loaded = loadEdgeListText(path);
    EXPECT_EQ(loaded.numVertices(), original.numVertices());
    ASSERT_EQ(loaded.numEdges(), original.numEdges());
    EXPECT_TRUE(loaded.edges() == original.edges());
    std::remove(path.c_str());
}

TEST_F(IoFixture, EdgeListWithoutHeaderInfersVertices)
{
    const auto path = tempPath("noheader.txt");
    {
        std::ofstream out(path);
        out << "0 5\n3 2\n# a comment\n5 0 2.5\n";
    }
    Coo loaded = loadEdgeListText(path);
    EXPECT_EQ(loaded.numVertices(), 6u);
    EXPECT_EQ(loaded.numEdges(), 3u);
    EXPECT_FLOAT_EQ(loaded.edges()[2].weight, 2.5f);
    std::remove(path.c_str());
}

TEST_F(IoFixture, CsrBinaryRoundTrip)
{
    Csr original = normalizedAdjacency(generateRmat(8, 2000,
                                                    rmatSkewed(), 13));
    const auto path = tempPath("graph.csr");
    saveCsrBinary(original, path);
    Csr loaded = loadCsrBinary(path);
    EXPECT_EQ(loaded.numVertices(), original.numVertices());
    ASSERT_EQ(loaded.numEdges(), original.numEdges());
    EXPECT_EQ(loaded.rowOffsets(), original.rowOffsets());
    EXPECT_EQ(loaded.cols(), original.cols());
    EXPECT_EQ(loaded.vals(), original.vals());
    std::remove(path.c_str());
}

TEST_F(IoFixture, RejectsWrongMagicThrows)
{
    const auto path = tempPath("bogus.csr");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is definitely not a CSR container";
    }
    EXPECT_THROW(loadCsrBinary(path), pgcn::GraphIoError);
    std::remove(path.c_str());
}

TEST_F(IoFixture, RejectsMalformedEdgeThrows)
{
    const auto path = tempPath("bad.txt");
    {
        std::ofstream out(path);
        out << "0 1\nnot numbers\n";
    }
    EXPECT_THROW(loadEdgeListText(path), pgcn::GraphIoError);
    std::remove(path.c_str());
}

TEST_F(IoFixture, RejectsOutOfRangeEndpointThrows)
{
    const auto path = tempPath("range.txt");
    {
        std::ofstream out(path);
        out << "# vertices 4\n0 9\n";
    }
    EXPECT_THROW(loadEdgeListText(path), pgcn::GraphIoError);
    std::remove(path.c_str());
}

} // namespace
