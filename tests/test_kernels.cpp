/**
 * @file
 * Tests for the functional CPU SpMM kernels. The reference kernel is
 * checked against hand-computed values; the parallel kernels are
 * property-tested against the reference across graph shapes, degree
 * profiles, embedding dimensions and thread counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/error.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "graph/reorder.hpp"
#include "kernels/spmm.hpp"

namespace {

using namespace pgcn;
using graph::Coo;
using graph::Csr;
using tensor::DenseMatrix;

TEST(SpmmReference, HandComputedTwoByTwo)
{
    // A = [[2, 1], [0, 3]], H = [[1, 2], [3, 4]]
    Coo coo(2);
    coo.addEdge(0, 0, 2.0f);
    coo.addEdge(0, 1, 1.0f);
    coo.addEdge(1, 1, 3.0f);
    Csr a(coo);
    DenseMatrix h(2, 2, {1, 2, 3, 4});
    DenseMatrix out;
    kernels::spmmReference(a, h, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);  // 2*1 + 1*3
    EXPECT_FLOAT_EQ(out.at(0, 1), 8.0f);  // 2*2 + 1*4
    EXPECT_FLOAT_EQ(out.at(1, 0), 9.0f);  // 3*3
    EXPECT_FLOAT_EQ(out.at(1, 1), 12.0f); // 3*4
}

TEST(SpmmReference, EmptyMatrixGivesZeros)
{
    Coo coo(3);
    Csr a(coo);
    DenseMatrix h(3, 4);
    h.fillRandom(1);
    DenseMatrix out;
    kernels::spmmReference(a, h, out);
    for (uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out.data()[i], 0.0f);
}

TEST(SpmmReference, RowOfZeroWeightEdges)
{
    Coo coo(2);
    coo.addEdge(0, 1, 0.0f);
    Csr a(coo);
    DenseMatrix h(2, 2);
    h.fillRandom(2);
    DenseMatrix out;
    kernels::spmmReference(a, h, out);
    EXPECT_EQ(out.at(0, 0), 0.0f);
    EXPECT_EQ(out.at(0, 1), 0.0f);
}

/** Parameters: (rmat scale, edges, K, threads, skewed?). */
class SpmmParallelEquivalence
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint64_t, uint64_t, unsigned, bool>>
{
  protected:
    Csr
    makeGraph() const
    {
        const auto [scale, edges, k, threads, skewed] = GetParam();
        (void)k;
        (void)threads;
        Coo coo = graph::generateRmat(
            scale, edges, skewed ? graph::rmatSkewed() : graph::rmatUniform(),
            1234);
        return graph::normalizedAdjacency(coo);
    }
};

TEST_P(SpmmParallelEquivalence, VertexParallelMatchesReference)
{
    const auto [scale, edges, k, threads, skewed] = GetParam();
    (void)edges;
    (void)skewed;
    Csr a = makeGraph();
    DenseMatrix h(a.numVertices(), k);
    h.fillRandom(7);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(threads);
    kernels::spmmVertexParallel(a, h, out, pool, 16);
    EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-5f))
        << "max diff " << maxAbsDiff(ref, out);
}

TEST_P(SpmmParallelEquivalence, EdgeParallelMatchesReference)
{
    const auto [scale, edges, k, threads, skewed] = GetParam();
    (void)edges;
    (void)skewed;
    Csr a = makeGraph();
    DenseMatrix h(a.numVertices(), k);
    h.fillRandom(7);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(threads);
    kernels::spmmEdgeParallel(a, h, out, pool);
    // Atomic accumulation reorders float adds; allow a looser bound.
    EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
        << "max diff " << maxAbsDiff(ref, out);
}

INSTANTIATE_TEST_SUITE_P(
    GraphSweep, SpmmParallelEquivalence,
    ::testing::Values(
        std::make_tuple(4u, uint64_t{40}, uint64_t{1}, 1u, true),
        std::make_tuple(6u, uint64_t{500}, uint64_t{8}, 2u, true),
        std::make_tuple(8u, uint64_t{4000}, uint64_t{16}, 4u, true),
        std::make_tuple(8u, uint64_t{4000}, uint64_t{16}, 4u, false),
        std::make_tuple(10u, uint64_t{20000}, uint64_t{32}, 8u, true),
        std::make_tuple(6u, uint64_t{100}, uint64_t{64}, 3u, false),
        std::make_tuple(5u, uint64_t{64}, uint64_t{256}, 5u, true)));

TEST(SpmmEdgeParallel, MoreThreadsThanEdges)
{
    Coo coo(4);
    coo.addEdge(0, 1, 1.0f);
    coo.addEdge(2, 3, 2.0f);
    Csr a(coo);
    DenseMatrix h(4, 4);
    h.fillRandom(3);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(8);
    kernels::spmmEdgeParallel(a, h, out, pool);
    EXPECT_TRUE(allClose(ref, out));
}

TEST(SpmmEdgeParallel, ThreadBoundaryInsideLongRow)
{
    // One giant row: every thread boundary falls inside it, exercising
    // the shared-row atomic flush path.
    Coo coo(64);
    for (graph::VertexId v = 0; v < 64; ++v)
        coo.addEdge(0, v, 1.0f + static_cast<float>(v));
    Csr a(coo);
    DenseMatrix h(64, 8);
    h.fillRandom(5);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(7);
    kernels::spmmEdgeParallel(a, h, out, pool);
    EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f));
}

TEST(SpmmVertexParallel, SingleThreadChunkLargerThanGraph)
{
    Coo coo = graph::generateUniform(32, 128, 9);
    Csr a(coo);
    DenseMatrix h(32, 4);
    h.fillRandom(11);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(1);
    kernels::spmmVertexParallel(a, h, out, pool, 10000);
    EXPECT_TRUE(allClose(ref, out, 0.0f, 0.0f));
}

} // namespace

// ------------------------------------------------------ tiled SpMM

#include "kernels/tiled_spmm.hpp"

namespace {

using namespace pgcn;
using graph::Coo;
using graph::Csr;
using tensor::DenseMatrix;

TEST(TiledSpmm, SingleTileMatchesReference)
{
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(9, 4000, graph::rmatSkewed(), 44));
    DenseMatrix h(a.numVertices(), 16);
    h.fillRandom(4);
    kernels::TiledSpmm tiled(a, 16); // default budget: one tile
    EXPECT_EQ(tiled.numTiles(), 1u);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(2);
    tiled.apply(h, out, pool);
    EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-5f));
}

/** (cache budget in rows, K, threads). */
class TiledSpmmEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t,
                                                 unsigned>>
{
};

TEST_P(TiledSpmmEquivalence, MatchesReferenceAcrossTileCounts)
{
    const auto [budget_rows, k, threads] = GetParam();
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(9, 6000, graph::rmatSkewed(), 45));
    DenseMatrix h(a.numVertices(), k);
    h.fillRandom(6);
    kernels::TiledSpmm tiled(a, k,
                             static_cast<double>(budget_rows) * k * 4);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(threads);
    tiled.apply(h, out, pool);
    EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
        << tiled.numTiles() << " tiles, max diff "
        << maxAbsDiff(ref, out);
    // The budget must actually induce multiple tiles when small.
    if (budget_rows < a.numVertices()) {
        EXPECT_GT(tiled.numTiles(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSweep, TiledSpmmEquivalence,
    ::testing::Values(std::make_tuple(uint64_t{8}, uint64_t{8}, 1u),
                      std::make_tuple(uint64_t{64}, uint64_t{16}, 4u),
                      std::make_tuple(uint64_t{100}, uint64_t{32}, 2u),
                      std::make_tuple(uint64_t{1000}, uint64_t{8}, 8u),
                      std::make_tuple(uint64_t{1u << 20}, uint64_t{64},
                                      4u)));

TEST(TiledSpmm, TileCountMatchesBudget)
{
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(8, 2000, graph::rmatSkewed(), 46));
    // Budget of exactly 32 rows at K=8 -> ceil(256/32) = 8 tiles.
    kernels::TiledSpmm tiled(a, 8, 32.0 * 8 * 4);
    EXPECT_EQ(tiled.numTiles(), (a.numVertices() + 31) / 32);
}

TEST(TiledSpmm, EmptyGraph)
{
    graph::Coo coo(4);
    Csr a(coo);
    kernels::TiledSpmm tiled(a, 4);
    DenseMatrix h(4, 4);
    h.fillRandom(1);
    DenseMatrix out;
    parallel::ThreadPool pool(2);
    tiled.apply(h, out, pool);
    for (uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out.data()[i], 0.0f);
}

TEST(TiledSpmm, RejectsMismatchedWidth)
{
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(6, 200, graph::rmatSkewed(), 47));
    kernels::TiledSpmm tiled(a, 8);
    DenseMatrix h(a.numVertices(), 16); // wrong width
    DenseMatrix out;
    parallel::ThreadPool pool(1);
    EXPECT_THROW(tiled.apply(h, out, pool), pgcn::ShapeError);
}

} // namespace

// ------------------------------- adversarial cross-variant property
// Every SpMM variant and both GEMMs against the scalar references, on
// inputs built to break tail paths and partitioners: empty rows, one
// dense row, degenerate graphs, widths straddling every SIMD tail
// regime — each repeated with dispatch pinned to every tier this host
// offers (so the force-scalar path is always exercised explicitly).

#include "kernels/fused_gcn.hpp"
#include "kernels/simd.hpp"
#include "tensor/dense_mm.hpp"

namespace {

using namespace pgcn;
using graph::Coo;
using graph::Csr;
using kernels::simd::Tier;
using tensor::DenseMatrix;

/** Row 0 dense, interleaved + trailing empty rows, a few self loops. */
Csr
adversarialGraph()
{
    const graph::VertexId n = 33;
    Coo coo(n);
    for (graph::VertexId v = 0; v < n; ++v)
        coo.addEdge(0, v, 0.25f + 0.01f * static_cast<float>(v));
    // Odd rows stay empty; even rows (>= 2) get a couple of edges.
    for (graph::VertexId u = 2; u + 4 < n; u += 2) {
        coo.addEdge(u, u, 1.0f);
        coo.addEdge(u, u + 3, -0.5f);
    }
    return Csr(coo);
}

/** Dispatch pinned to a tier for the test's lifetime. */
class SpmmVariantProperty
    : public ::testing::TestWithParam<std::tuple<Tier, uint64_t>>
{
  protected:
    void
    SetUp() override
    {
        kernels::simd::forceTier(std::get<0>(GetParam()));
    }
    void
    TearDown() override
    {
        kernels::simd::resetTier();
    }
    uint64_t
    k() const
    {
        return std::get<1>(GetParam());
    }

    void
    expectAllVariantsMatch(const Csr &a, unsigned threads)
    {
        DenseMatrix h(a.numVertices(), k());
        h.fillRandom(13);
        DenseMatrix ref;
        kernels::spmmReference(a, h, ref);
        parallel::ThreadPool pool(threads);

        DenseMatrix out;
        kernels::spmmVertexParallel(a, h, out, pool, 4);
        EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-5f))
            << "vertex-parallel, max diff " << maxAbsDiff(ref, out);

        kernels::spmmEdgeParallel(a, h, out, pool);
        EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
            << "edge-parallel, max diff " << maxAbsDiff(ref, out);

        kernels::spmmNnzBalanced(a, h, out, pool);
        EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-5f))
            << "nnz-balanced, max diff " << maxAbsDiff(ref, out);

        if (k() > 0) {
            kernels::TiledSpmm tiled(a, k(),
                                     /*cache_budget=*/8.0 * k() * 4);
            tiled.apply(h, out, pool);
            EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
                << "tiled, max diff " << maxAbsDiff(ref, out);
        }
    }
};

TEST_P(SpmmVariantProperty, AdversarialGraphAllVariantsAgree)
{
    expectAllVariantsMatch(adversarialGraph(), 4);
}

TEST_P(SpmmVariantProperty, OneDenseRowSwallowsEveryPartition)
{
    // A single row holding all non-zeros: every NNZ-balanced chunk
    // boundary collapses onto it and most chunks come out empty.
    Coo coo(16);
    for (graph::VertexId v = 0; v < 16; ++v)
        coo.addEdge(7, v, 1.0f / (1.0f + static_cast<float>(v)));
    expectAllVariantsMatch(Csr(coo), 8);
}

TEST_P(SpmmVariantProperty, ZeroVertexGraph)
{
    expectAllVariantsMatch(Csr(Coo(0)), 2);
}

TEST_P(SpmmVariantProperty, OneVertexNoEdges)
{
    expectAllVariantsMatch(Csr(Coo(1)), 3);
}

TEST_P(SpmmVariantProperty, OneVertexSelfLoop)
{
    Coo coo(1);
    coo.addEdge(0, 0, 0.5f);
    expectAllVariantsMatch(Csr(coo), 3);
}

TEST_P(SpmmVariantProperty, FusedLayerMatchesUnfusedPipeline)
{
    const Csr a = adversarialGraph();
    const uint64_t k_out = 19; // odd: exercises GEMM panel tails
    DenseMatrix h(a.numVertices(), k());
    h.fillRandom(17);
    DenseMatrix w(k(), k_out);
    w.fillRandom(18);

    DenseMatrix ah, ref;
    kernels::spmmReference(a, h, ah);
    tensor::denseMmReference(ah, w, ref);

    parallel::ThreadPool pool(4);
    DenseMatrix out;
    for (bool relu : {false, true}) {
        DenseMatrix want = ref;
        if (relu)
            tensor::reluInPlace(want);
        // tile_rows=5 forces many partial tiles on a 33-row graph.
        kernels::fusedSpmmGemm(a, h, w, out, pool, relu,
                               /*tile_rows=*/5);
        EXPECT_TRUE(allClose(want, out, 1e-3f, 1e-4f))
            << "fused relu=" << relu << ", max diff "
            << maxAbsDiff(want, out);
    }
}

TEST_P(SpmmVariantProperty, PackedGemmMatchesBothScalarOracles)
{
    // m x kk x n with every dimension off the blocking grid.
    const uint64_t m = 23, kk = k() > 0 ? k() : 1, n = 21;
    DenseMatrix a(m, kk), b(kk, n);
    a.fillRandom(19);
    b.fillRandom(20);
    DenseMatrix ref, blocked_scalar, packed;
    tensor::denseMmReference(a, b, ref);
    tensor::denseMmBlockedScalar(a, b, blocked_scalar, 16);
    tensor::denseMmBlocked(a, b, packed);
    EXPECT_TRUE(allClose(ref, blocked_scalar, 1e-4f, 1e-5f));
    EXPECT_TRUE(allClose(ref, packed, 1e-4f, 1e-5f))
        << "packed GEMM, max diff " << maxAbsDiff(ref, packed);
}

INSTANTIATE_TEST_SUITE_P(
    TierAndWidthSweep, SpmmVariantProperty,
    ::testing::Combine(
        ::testing::ValuesIn(kernels::simd::availableTiers()),
        ::testing::Values(uint64_t{1}, uint64_t{7}, uint64_t{32},
                          uint64_t{257})),
    [](const ::testing::TestParamInfo<std::tuple<Tier, uint64_t>>
           &info) {
        return std::string(
                   kernels::simd::tierName(std::get<0>(info.param))) +
               "_k" + std::to_string(std::get<1>(info.param));
    });

TEST(SpmmNnzChunks, BalancedOnUniformRows)
{
    // 8 rows x 4 nnz each, 4 parts -> exact 2-row chunks.
    std::vector<graph::EdgeId> offsets;
    for (graph::EdgeId i = 0; i <= 8; ++i)
        offsets.push_back(i * 4);
    const auto bounds = kernels::nnzBalancedRowChunks(offsets, 4);
    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds[0], 0u);
    EXPECT_EQ(bounds[1], 2u);
    EXPECT_EQ(bounds[2], 4u);
    EXPECT_EQ(bounds[3], 6u);
    EXPECT_EQ(bounds[4], 8u);
}

TEST(SpmmNnzChunks, MonotoneAndCoveringOnSkew)
{
    // One huge row then a tail of tiny ones.
    std::vector<graph::EdgeId> offsets = {0, 1000, 1001, 1002,
                                          1003, 1004};
    const auto bounds = kernels::nnzBalancedRowChunks(offsets, 4);
    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 5u);
    for (size_t p = 1; p < bounds.size(); ++p)
        EXPECT_LE(bounds[p - 1], bounds[p]);
    // The huge row lands alone in the first chunk.
    EXPECT_EQ(bounds[1], 1u);
}

TEST(SpmmNnzChunks, MorePartsThanRows)
{
    std::vector<graph::EdgeId> offsets = {0, 2, 4};
    const auto bounds = kernels::nnzBalancedRowChunks(offsets, 16);
    ASSERT_EQ(bounds.size(), 17u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 2u);
    for (size_t p = 1; p < bounds.size(); ++p)
        EXPECT_LE(bounds[p - 1], bounds[p]);
}

TEST(SpmmNnzChunks, EmptyMatrix)
{
    std::vector<graph::EdgeId> offsets = {0};
    const auto bounds = kernels::nnzBalancedRowChunks(offsets, 4);
    ASSERT_EQ(bounds.size(), 5u);
    for (const auto b : bounds)
        EXPECT_EQ(b, 0u);
}

/**
 * The chunking invariants (monotone, covering, balanced-ish) must
 * survive any relabeling of the graph — reordered CSRs are the normal
 * input after the reorder sweeps.
 */
TEST(SpmmNnzChunks, InvariantsHoldOnPermutedAndIslandizedCsrs)
{
    const Csr a = graph::normalizedAdjacency(
        graph::generateRmat(8, 4000, graph::rmatSkewed(), 19));
    for (uint64_t seed : {1u, 2u}) {
        const Csr shuffled =
            graph::shuffleOrder(a.numVertices(), seed).applyToCsr(a);
        for (unsigned parts : {1u, 3u, 8u, 64u}) {
            const auto bounds =
                kernels::nnzBalancedRowChunks(shuffled.rowOffsets(),
                                              parts);
            ASSERT_EQ(bounds.size(), parts + 1u);
            EXPECT_EQ(bounds.front(), 0u);
            EXPECT_EQ(bounds.back(), shuffled.numVertices());
            EXPECT_TRUE(
                std::is_sorted(bounds.begin(), bounds.end()));
        }
    }
    const auto isl = graph::islandOrder(a, 32);
    const Csr islandized = isl.perm.applyToCsr(a);
    const auto aligned = kernels::nnzBalancedRowChunksAligned(
        islandized.rowOffsets(), isl.boundaries, 8);
    EXPECT_EQ(aligned.front(), 0u);
    EXPECT_EQ(aligned.back(), islandized.numVertices());
    EXPECT_TRUE(std::is_sorted(aligned.begin(), aligned.end()));
}

TEST(SpmmNnzChunks, AlignedWithEmptyIslands)
{
    // Middle islands are empty row ranges (boundaries repeat).
    std::vector<graph::EdgeId> offsets = {0, 4, 8, 8, 8, 12, 16};
    const std::vector<graph::VertexId> islands = {0, 2, 2, 4, 4, 6};
    const auto bounds =
        kernels::nnzBalancedRowChunksAligned(offsets, islands, 4);
    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 6u);
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(SpmmNnzChunks, AlignedSingleHubIsland)
{
    // One island owns all non-zeros: every split snaps around it and
    // the other chunks come out empty but valid.
    std::vector<graph::EdgeId> offsets = {0, 500, 500, 500, 500};
    const std::vector<graph::VertexId> islands = {0, 1, 2, 3, 4};
    const auto bounds =
        kernels::nnzBalancedRowChunksAligned(offsets, islands, 4);
    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 4u);
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    // Every split lands on an island boundary, so exactly one chunk
    // holds the hub island [0, 1) and it is never split.
    for (const auto b : bounds)
        EXPECT_NE(std::find(islands.begin(), islands.end(), b),
                  islands.end());
    EXPECT_NE(std::find(bounds.begin(), bounds.end(), 1u),
              bounds.end());
}

TEST(SpmmNnzChunks, AlignedMorePartsThanNonemptyRows)
{
    std::vector<graph::EdgeId> offsets = {0, 2, 2, 4};
    const std::vector<graph::VertexId> islands = {0, 1, 2, 3};
    const auto bounds =
        kernels::nnzBalancedRowChunksAligned(offsets, islands, 12);
    ASSERT_EQ(bounds.size(), 13u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 3u);
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

} // namespace
