/**
 * @file
 * Tests for the functional CPU SpMM kernels. The reference kernel is
 * checked against hand-computed values; the parallel kernels are
 * property-tested against the reference across graph shapes, degree
 * profiles, embedding dimensions and thread counts.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "kernels/spmm.hpp"

namespace {

using namespace pgcn;
using graph::Coo;
using graph::Csr;
using tensor::DenseMatrix;

TEST(SpmmReference, HandComputedTwoByTwo)
{
    // A = [[2, 1], [0, 3]], H = [[1, 2], [3, 4]]
    Coo coo(2);
    coo.addEdge(0, 0, 2.0f);
    coo.addEdge(0, 1, 1.0f);
    coo.addEdge(1, 1, 3.0f);
    Csr a(coo);
    DenseMatrix h(2, 2, {1, 2, 3, 4});
    DenseMatrix out;
    kernels::spmmReference(a, h, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);  // 2*1 + 1*3
    EXPECT_FLOAT_EQ(out.at(0, 1), 8.0f);  // 2*2 + 1*4
    EXPECT_FLOAT_EQ(out.at(1, 0), 9.0f);  // 3*3
    EXPECT_FLOAT_EQ(out.at(1, 1), 12.0f); // 3*4
}

TEST(SpmmReference, EmptyMatrixGivesZeros)
{
    Coo coo(3);
    Csr a(coo);
    DenseMatrix h(3, 4);
    h.fillRandom(1);
    DenseMatrix out;
    kernels::spmmReference(a, h, out);
    for (uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out.data()[i], 0.0f);
}

TEST(SpmmReference, RowOfZeroWeightEdges)
{
    Coo coo(2);
    coo.addEdge(0, 1, 0.0f);
    Csr a(coo);
    DenseMatrix h(2, 2);
    h.fillRandom(2);
    DenseMatrix out;
    kernels::spmmReference(a, h, out);
    EXPECT_EQ(out.at(0, 0), 0.0f);
    EXPECT_EQ(out.at(0, 1), 0.0f);
}

/** Parameters: (rmat scale, edges, K, threads, skewed?). */
class SpmmParallelEquivalence
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint64_t, uint64_t, unsigned, bool>>
{
  protected:
    Csr
    makeGraph() const
    {
        const auto [scale, edges, k, threads, skewed] = GetParam();
        (void)k;
        (void)threads;
        Coo coo = graph::generateRmat(
            scale, edges, skewed ? graph::rmatSkewed() : graph::rmatUniform(),
            1234);
        return graph::normalizedAdjacency(coo);
    }
};

TEST_P(SpmmParallelEquivalence, VertexParallelMatchesReference)
{
    const auto [scale, edges, k, threads, skewed] = GetParam();
    (void)edges;
    (void)skewed;
    Csr a = makeGraph();
    DenseMatrix h(a.numVertices(), k);
    h.fillRandom(7);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(threads);
    kernels::spmmVertexParallel(a, h, out, pool, 16);
    EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-5f))
        << "max diff " << maxAbsDiff(ref, out);
}

TEST_P(SpmmParallelEquivalence, EdgeParallelMatchesReference)
{
    const auto [scale, edges, k, threads, skewed] = GetParam();
    (void)edges;
    (void)skewed;
    Csr a = makeGraph();
    DenseMatrix h(a.numVertices(), k);
    h.fillRandom(7);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(threads);
    kernels::spmmEdgeParallel(a, h, out, pool);
    // Atomic accumulation reorders float adds; allow a looser bound.
    EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
        << "max diff " << maxAbsDiff(ref, out);
}

INSTANTIATE_TEST_SUITE_P(
    GraphSweep, SpmmParallelEquivalence,
    ::testing::Values(
        std::make_tuple(4u, uint64_t{40}, uint64_t{1}, 1u, true),
        std::make_tuple(6u, uint64_t{500}, uint64_t{8}, 2u, true),
        std::make_tuple(8u, uint64_t{4000}, uint64_t{16}, 4u, true),
        std::make_tuple(8u, uint64_t{4000}, uint64_t{16}, 4u, false),
        std::make_tuple(10u, uint64_t{20000}, uint64_t{32}, 8u, true),
        std::make_tuple(6u, uint64_t{100}, uint64_t{64}, 3u, false),
        std::make_tuple(5u, uint64_t{64}, uint64_t{256}, 5u, true)));

TEST(SpmmEdgeParallel, MoreThreadsThanEdges)
{
    Coo coo(4);
    coo.addEdge(0, 1, 1.0f);
    coo.addEdge(2, 3, 2.0f);
    Csr a(coo);
    DenseMatrix h(4, 4);
    h.fillRandom(3);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(8);
    kernels::spmmEdgeParallel(a, h, out, pool);
    EXPECT_TRUE(allClose(ref, out));
}

TEST(SpmmEdgeParallel, ThreadBoundaryInsideLongRow)
{
    // One giant row: every thread boundary falls inside it, exercising
    // the shared-row atomic flush path.
    Coo coo(64);
    for (graph::VertexId v = 0; v < 64; ++v)
        coo.addEdge(0, v, 1.0f + static_cast<float>(v));
    Csr a(coo);
    DenseMatrix h(64, 8);
    h.fillRandom(5);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(7);
    kernels::spmmEdgeParallel(a, h, out, pool);
    EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f));
}

TEST(SpmmVertexParallel, SingleThreadChunkLargerThanGraph)
{
    Coo coo = graph::generateUniform(32, 128, 9);
    Csr a(coo);
    DenseMatrix h(32, 4);
    h.fillRandom(11);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(1);
    kernels::spmmVertexParallel(a, h, out, pool, 10000);
    EXPECT_TRUE(allClose(ref, out, 0.0f, 0.0f));
}

} // namespace

// ------------------------------------------------------ tiled SpMM

#include "kernels/tiled_spmm.hpp"

namespace {

using namespace pgcn;
using graph::Coo;
using graph::Csr;
using tensor::DenseMatrix;

TEST(TiledSpmm, SingleTileMatchesReference)
{
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(9, 4000, graph::rmatSkewed(), 44));
    DenseMatrix h(a.numVertices(), 16);
    h.fillRandom(4);
    kernels::TiledSpmm tiled(a, 16); // default budget: one tile
    EXPECT_EQ(tiled.numTiles(), 1u);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(2);
    tiled.apply(h, out, pool);
    EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-5f));
}

/** (cache budget in rows, K, threads). */
class TiledSpmmEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t,
                                                 unsigned>>
{
};

TEST_P(TiledSpmmEquivalence, MatchesReferenceAcrossTileCounts)
{
    const auto [budget_rows, k, threads] = GetParam();
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(9, 6000, graph::rmatSkewed(), 45));
    DenseMatrix h(a.numVertices(), k);
    h.fillRandom(6);
    kernels::TiledSpmm tiled(a, k,
                             static_cast<double>(budget_rows) * k * 4);
    DenseMatrix ref, out;
    kernels::spmmReference(a, h, ref);
    parallel::ThreadPool pool(threads);
    tiled.apply(h, out, pool);
    EXPECT_TRUE(allClose(ref, out, 1e-3f, 1e-4f))
        << tiled.numTiles() << " tiles, max diff "
        << maxAbsDiff(ref, out);
    // The budget must actually induce multiple tiles when small.
    if (budget_rows < a.numVertices()) {
        EXPECT_GT(tiled.numTiles(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSweep, TiledSpmmEquivalence,
    ::testing::Values(std::make_tuple(uint64_t{8}, uint64_t{8}, 1u),
                      std::make_tuple(uint64_t{64}, uint64_t{16}, 4u),
                      std::make_tuple(uint64_t{100}, uint64_t{32}, 2u),
                      std::make_tuple(uint64_t{1000}, uint64_t{8}, 8u),
                      std::make_tuple(uint64_t{1u << 20}, uint64_t{64},
                                      4u)));

TEST(TiledSpmm, TileCountMatchesBudget)
{
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(8, 2000, graph::rmatSkewed(), 46));
    // Budget of exactly 32 rows at K=8 -> ceil(256/32) = 8 tiles.
    kernels::TiledSpmm tiled(a, 8, 32.0 * 8 * 4);
    EXPECT_EQ(tiled.numTiles(), (a.numVertices() + 31) / 32);
}

TEST(TiledSpmm, EmptyGraph)
{
    graph::Coo coo(4);
    Csr a(coo);
    kernels::TiledSpmm tiled(a, 4);
    DenseMatrix h(4, 4);
    h.fillRandom(1);
    DenseMatrix out;
    parallel::ThreadPool pool(2);
    tiled.apply(h, out, pool);
    for (uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out.data()[i], 0.0f);
}

TEST(TiledSpmm, RejectsMismatchedWidth)
{
    Csr a = graph::normalizedAdjacency(
        graph::generateRmat(6, 200, graph::rmatSkewed(), 47));
    kernels::TiledSpmm tiled(a, 8);
    DenseMatrix h(a.numVertices(), 16); // wrong width
    DenseMatrix out;
    parallel::ThreadPool pool(1);
    EXPECT_THROW(tiled.apply(h, out, pool), pgcn::ShapeError);
}

} // namespace
