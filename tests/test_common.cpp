/**
 * @file
 * Unit tests for src/common: RNG determinism and distribution, running
 * statistics, histograms, percentiles, table formatting, unit
 * conversions, log-level filtering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

using namespace pgcn;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(5);
    for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.uniformInt(8)];
    for (int c : counts)
        EXPECT_GT(c, 700); // expect ~1000 each; catch gross bias
}

TEST(SplitMix, Deterministic)
{
    uint64_t s1 = 42, s2 = 42;
    EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

TEST(RunningStat, Empty)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat rs;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(x);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 4.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat rs;
    rs.add(3.5);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 3.5);
    EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(Percentile, MedianOfOdd)
{
    EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, Extremes)
{
    std::vector<double> v{5, 1, 9, 3};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(Percentile, Interpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(Geomean, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Histogram, EmptyState)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.numBuckets(), 10u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, BucketsAndOutliers)
{
    Histogram h(0.0, 100.0, 10);
    h.add(5.0);   // bucket 0
    h.add(15.0);  // bucket 1
    h.add(95.0);  // bucket 9
    h.add(-1.0);  // underflow
    h.add(250.0); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 250.0);
    EXPECT_DOUBLE_EQ(h.sum(), 364.0);
}

TEST(Histogram, PercentilesClampToObservedRange)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i) - 0.5);
    // Rank clamps to the first sample, so p=0 reads the upper edge of
    // its bucket; p=100 clamps to the observed maximum.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 99.5);
    // With one sample per unit-wide bucket, interpolation lands
    // inside the covering bucket.
    EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
    EXPECT_NEAR(h.percentile(99.0), 99.0, 1.0);
}

TEST(Histogram, PercentileOfSingleSample)
{
    Histogram h(0.0, 10.0, 4);
    h.add(3.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 3.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(0.0, 10.0, 5);
    Histogram b(0.0, 10.0, 5);
    a.add(1.0);
    a.add(9.0);
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 15.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(LogLevel, ParseNamesCaseInsensitive)
{
    EXPECT_EQ(parseLogLevel("error", LogLevel::Info), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("WARN", LogLevel::Info), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning", LogLevel::Info), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("Info", LogLevel::Error), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug", LogLevel::Info), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("bogus", LogLevel::Warn), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel(nullptr, LogLevel::Debug), LogLevel::Debug);
}

TEST(LogLevel, SeverityFilter)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
    setLogLevel(saved);
}

TEST(LogLevel, EnvVariableControlsLevel)
{
    const LogLevel saved = logLevel();
    ::unsetenv("PIUMA_LOG");
    ::setenv("PGCN_LOG", "error", 1);
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Error);
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    ::setenv("PGCN_LOG", "debug", 1);
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    ::unsetenv("PGCN_LOG");
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Info); // default
    setLogLevel(saved);
}

TEST(LogLevel, DeprecatedPiumaLogAliasStillWorks)
{
    const LogLevel saved = logLevel();
    ::unsetenv("PGCN_LOG");
    ::setenv("PIUMA_LOG", "error", 1);
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Error);
    // The canonical name wins when both are set.
    ::setenv("PGCN_LOG", "debug", 1);
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    ::unsetenv("PGCN_LOG");
    ::unsetenv("PIUMA_LOG");
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(saved);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t("demo", {"name", "value"});
    t.row().cell("alpha").cell(int64_t{42});
    t.row().cell("beta").cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    Table t("csv", {"a"});
    t.row().cell("x,y");
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t("rows", {"a", "b"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.row().cell("1").cell("2");
    t.row().cell("3").cell("4");
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Units, BandwidthConversion)
{
    // 1 GB/s is exactly 1 byte per ns.
    EXPECT_DOUBLE_EQ(units::gbPerSecToBytesPerNs(1.0), 1.0);
    EXPECT_DOUBLE_EQ(units::gbPerSecToBytesPerNs(204.8), 204.8);
}

TEST(Units, TimeRoundTrip)
{
    EXPECT_DOUBLE_EQ(units::nsToSeconds(units::secondsToNs(2.5)), 2.5);
}

TEST(Units, Gflops)
{
    // 2e9 FLOP in 1 second (1e9 ns) = 2 GFLOP/s.
    EXPECT_DOUBLE_EQ(units::gflops(2e9, units::kSec), 2.0);
}

TEST(HumanFormat, Bytes)
{
    EXPECT_EQ(humanBytes(512), "512.0 B");
    EXPECT_EQ(humanBytes(1536), "1.50 KiB");
}

TEST(HumanFormat, Time)
{
    EXPECT_EQ(humanTimeNs(500), "500.0 ns");
    EXPECT_EQ(humanTimeNs(2500), "2.50 us");
}

} // namespace
