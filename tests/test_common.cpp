/**
 * @file
 * Unit tests for src/common: RNG determinism and distribution, running
 * statistics, percentiles, table formatting, unit conversions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

using namespace pgcn;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(5);
    for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.uniformInt(8)];
    for (int c : counts)
        EXPECT_GT(c, 700); // expect ~1000 each; catch gross bias
}

TEST(SplitMix, Deterministic)
{
    uint64_t s1 = 42, s2 = 42;
    EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

TEST(RunningStat, Empty)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat rs;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(x);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 4.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat rs;
    rs.add(3.5);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 3.5);
    EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(Percentile, MedianOfOdd)
{
    EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, Extremes)
{
    std::vector<double> v{5, 1, 9, 3};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(Percentile, Interpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(Geomean, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t("demo", {"name", "value"});
    t.row().cell("alpha").cell(int64_t{42});
    t.row().cell("beta").cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    Table t("csv", {"a"});
    t.row().cell("x,y");
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t("rows", {"a", "b"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.row().cell("1").cell("2");
    t.row().cell("3").cell("4");
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Units, BandwidthConversion)
{
    // 1 GB/s is exactly 1 byte per ns.
    EXPECT_DOUBLE_EQ(units::gbPerSecToBytesPerNs(1.0), 1.0);
    EXPECT_DOUBLE_EQ(units::gbPerSecToBytesPerNs(204.8), 204.8);
}

TEST(Units, TimeRoundTrip)
{
    EXPECT_DOUBLE_EQ(units::nsToSeconds(units::secondsToNs(2.5)), 2.5);
}

TEST(Units, Gflops)
{
    // 2e9 FLOP in 1 second (1e9 ns) = 2 GFLOP/s.
    EXPECT_DOUBLE_EQ(units::gflops(2e9, units::kSec), 2.0);
}

TEST(HumanFormat, Bytes)
{
    EXPECT_EQ(humanBytes(512), "512.0 B");
    EXPECT_EQ(humanBytes(1536), "1.50 KiB");
}

TEST(HumanFormat, Time)
{
    EXPECT_EQ(humanTimeNs(500), "500.0 ns");
    EXPECT_EQ(humanTimeNs(2500), "2.50 us");
}

} // namespace
