/**
 * @file
 * Tests for the PIUMA timing model: configuration invariants, DGAS
 * memory latency composition, DMA engine behaviour, and — most
 * importantly — the paper's qualitative findings reproduced as
 * properties of the simulated SpMM:
 *   (1) DMA SpMM reaches a high fraction of the bandwidth-bound model
 *       and strong-scales; loop-unrolled falls off at high core
 *       counts (Fig. 5);
 *   (2) throughput scales ~linearly with DRAM bandwidth (Fig. 6 top);
 *   (3) DMA SpMM is latency-insensitive with 16 threads/MTP but loses
 *       that insensitivity at 1 thread/MTP for small K (Figs. 6-7);
 *   (4) traffic matches the analytical equations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "graph/reorder.hpp"
#include "kernels/spmm.hpp"
#include "model/spmm_model.hpp"
#include "parallel/thread_pool.hpp"
#include "piuma/config.hpp"
#include "piuma/memory.hpp"
#include "piuma/node_model.hpp"
#include "piuma/spmm_programs.hpp"
#include "tensor/dense_matrix.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::piuma;

graph::Csr
testGraph(uint32_t scale, graph::EdgeId edges, uint64_t seed = 99)
{
    return graph::normalizedAdjacency(
        graph::generateRmat(scale, edges, graph::rmatSkewed(), seed));
}

PiumaConfig
smallConfig(unsigned cores)
{
    PiumaConfig cfg;
    cfg.numCores = cores;
    return cfg;
}

TEST(PiumaConfig, Derived)
{
    PiumaConfig cfg = PiumaConfig::singleDie();
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.totalThreads(), 8u * 4u * 16u);
    EXPECT_DOUBLE_EQ(cfg.aggregateBandwidth(),
                     8 * cfg.sliceBandwidthGBps);
    PiumaConfig node = PiumaConfig::node();
    EXPECT_EQ(node.numCores, 256u);
    EXPECT_GT(node.totalThreads(), 16000u); // ">16K threads per node"
}

TEST(PiumaConfig, NetworkLatencyTiers)
{
    PiumaConfig cfg;
    cfg.numCores = 16; // two dies
    EXPECT_DOUBLE_EQ(cfg.oneWayLatencyNs(3, 3), 0.0);
    EXPECT_DOUBLE_EQ(cfg.oneWayLatencyNs(0, 7), cfg.netSameDieNs);
    EXPECT_DOUBLE_EQ(cfg.oneWayLatencyNs(0, 8), cfg.netCrossDieNs);
}

TEST(PiumaConfig, SweepScalesApply)
{
    PiumaConfig cfg;
    cfg.dramLatencyScale = 4.0;
    cfg.dramBandwidthScale = 0.5;
    EXPECT_DOUBLE_EQ(cfg.effectiveDramLatencyNs(),
                     4.0 * cfg.dramLatencyNs);
    EXPECT_DOUBLE_EQ(cfg.effectiveSliceBandwidth(),
                     0.5 * cfg.sliceBandwidthGBps);
}

/** Coroutine driver: one awaited access, result captured by ref. */
sim::Process
readOnce(MemorySystem &mem, unsigned core, unsigned slice, double bytes,
         bool pipelined, MemoryAccess &out)
{
    out = co_await mem.read(core, slice, bytes, pipelined);
}

/** Same, but issuing only after @p delay (arrival-order tests). */
sim::Process
readAfter(sim::Engine &eng, MemorySystem &mem, sim::SimTime delay,
          unsigned core, unsigned slice, double bytes, MemoryAccess &out)
{
    co_await eng.delay(delay);
    out = co_await mem.read(core, slice, bytes);
}

TEST(Memory, LocalAccessLatency)
{
    sim::DomainSet domains{1u};
    PiumaConfig cfg = smallConfig(2);
    MemorySystem mem(domains, cfg);
    MemoryAccess acc;
    readOnce(mem, 0, 0, 64.0, /*pipelined=*/false, acc);
    domains.run();
    // Local: no network latency; service = transfer only.
    EXPECT_DOUBLE_EQ(acc.serviceDoneAt, 64.0 / cfg.sliceBandwidthGBps);
    EXPECT_DOUBLE_EQ(acc.responseAt,
                     acc.serviceDoneAt + cfg.dramLatencyNs);
}

TEST(Memory, RemoteAccessAddsNetworkLatency)
{
    sim::DomainSet domains{1u};
    PiumaConfig cfg = smallConfig(2); // same die
    MemorySystem mem(domains, cfg);
    MemoryAccess acc;
    readOnce(mem, 0, 1, 64.0, /*pipelined=*/false, acc);
    domains.run();
    const double transfer = 64.0 / cfg.sliceBandwidthGBps;
    EXPECT_DOUBLE_EQ(acc.serviceDoneAt, cfg.netSameDieNs + transfer);
    EXPECT_DOUBLE_EQ(acc.responseAt, acc.serviceDoneAt +
                                         cfg.dramLatencyNs +
                                         cfg.netSameDieNs);
}

TEST(Memory, PipelinedRemoteSkipsDramLatency)
{
    // Pipelined accesses overlap the DRAM leg with the streamed
    // transfer, but the request hop is a real event since the
    // two-phase protocol: service cannot start before the request
    // reaches the slice, and the response still pays the return hop.
    sim::DomainSet domains{1u};
    PiumaConfig cfg = smallConfig(2);
    MemorySystem mem(domains, cfg);
    MemoryAccess acc;
    readOnce(mem, 0, 1, 64.0, /*pipelined=*/true, acc);
    domains.run();
    const double transfer = 64.0 / cfg.sliceBandwidthGBps;
    EXPECT_DOUBLE_EQ(acc.serviceDoneAt, cfg.netSameDieNs + transfer);
    EXPECT_DOUBLE_EQ(acc.responseAt,
                     acc.serviceDoneAt + cfg.netSameDieNs);
}

TEST(Memory, ContentionQueues)
{
    // Local clean accesses resolve synchronously at issue, so two
    // back-to-back issues from the same core must queue on the slice.
    sim::DomainSet domains{1u};
    PiumaConfig cfg = smallConfig(1);
    MemorySystem mem(domains, cfg);
    PendingAccess first, second;
    mem.readAsync(0, 0, 256.0, /*pipelined=*/false, first);
    mem.readAsync(0, 0, 256.0, /*pipelined=*/false, second);
    ASSERT_EQ(first.remaining, 0u);
    ASSERT_EQ(second.remaining, 0u);
    EXPECT_GT(second.acc.serviceDoneAt, first.acc.serviceDoneAt);
    EXPECT_DOUBLE_EQ(second.acc.serviceDoneAt,
                     2.0 * first.acc.serviceDoneAt);
}

TEST(Memory, ArbitrationFollowsArrivalNotIssueOrder)
{
    // Two requesters, one slice, issue order != arrival order: the
    // cross-die request leaves first (t=0) but its 250 ns request hop
    // lands it at the slice *after* the same-die request issued at
    // t=100 (arrival 120). Grants must follow arrival timestamps, so
    // the later-issued same-die requester is served first and the
    // earlier-issued cross-die one queues behind it.
    sim::DomainSet domains{1u};
    PiumaConfig cfg = smallConfig(16); // two dies of 8
    MemorySystem mem(domains, cfg);
    const double bytes = 4096.0; // service long enough to overlap
    const double transfer = bytes / cfg.sliceBandwidthGBps;
    MemoryAccess cross_die, same_die;
    readAfter(domains.engine(0), mem, 0.0, /*core=*/8, /*slice=*/0,
              bytes, cross_die);
    readAfter(domains.engine(0), mem, 100.0, /*core=*/1, /*slice=*/0,
              bytes, same_die);
    domains.run();
    ASSERT_LT(100.0 + cfg.netSameDieNs, cfg.netCrossDieNs);
    EXPECT_DOUBLE_EQ(same_die.serviceDoneAt,
                     100.0 + cfg.netSameDieNs + transfer);
    EXPECT_DOUBLE_EQ(cross_die.serviceDoneAt,
                     same_die.serviceDoneAt + transfer);
}

TEST(SpmmSim, TrafficMatchesAnalyticalEquations)
{
    // DRAM reads must cover the CSR and feature traffic of Eqs. 1-2;
    // writes must be close to Eq. 3 (plus per-thread shared-row
    // duplicates). Line-granularity NNZ fetches over-fetch slightly.
    graph::Csr csr = testGraph(9, 4000);
    const unsigned k = 32;
    PiumaConfig cfg = smallConfig(2);
    const auto stats =
        simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);

    model::SpmmWorkload w{csr.numVertices(), csr.numEdges(), k};
    const auto est = model::estimateSpmm(w, 1.0, 1.0);

    // Feature reads dominate; allow the line-granularity CSR streams
    // and binary-search probes to add at most ~3x the (small) CSR
    // term.
    EXPECT_GE(stats.bytesRead, est.bytesFeature);
    EXPECT_LE(stats.bytesRead, est.bytesFeature + 4.0 * est.bytesCsr +
                                   cfg.totalThreads() * 64.0 * 16.0);
    // Writes: every row once, plus at most one duplicate per thread.
    EXPECT_GE(stats.bytesWritten, est.bytesWrite);
    EXPECT_LE(stats.bytesWritten,
              est.bytesWrite + cfg.totalThreads() * 4.0 * k);
}

TEST(SpmmSim, DmaReachesHighFractionOfBandwidthModel)
{
    graph::Csr csr = testGraph(11, 40000);
    const unsigned k = 64;
    PiumaConfig cfg = smallConfig(4);
    const auto stats = simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);

    model::SpmmWorkload w{csr.numVertices(), csr.numEdges(), k};
    const double bw = cfg.aggregateBandwidth();
    const auto est = model::estimateSpmm(w, bw, bw);

    const double fraction = est.timeNs / stats.makespanNs;
    EXPECT_GT(fraction, 0.65) << "DMA SpMM too far from the model";
    EXPECT_LE(fraction, 1.05) << "DMA SpMM cannot beat the bound";
}

TEST(SpmmSim, DmaStrongScalesBetterThanLoopUnrolled)
{
    graph::Csr csr = testGraph(11, 40000);
    const unsigned k = 64;

    const auto dma1 =
        simulateSpmm(csr, k, smallConfig(1), SpmmAlgorithm::Dma);
    const auto dma8 =
        simulateSpmm(csr, k, smallConfig(8), SpmmAlgorithm::Dma);
    const auto lu1 =
        simulateSpmm(csr, k, smallConfig(1), SpmmAlgorithm::LoopUnrolled);
    const auto lu8 =
        simulateSpmm(csr, k, smallConfig(8), SpmmAlgorithm::LoopUnrolled);

    const double dma_speedup = dma1.makespanNs / dma8.makespanNs;
    const double lu_speedup = lu1.makespanNs / lu8.makespanNs;
    EXPECT_GT(dma_speedup, 5.0) << "DMA should scale near-linearly to 8";
    EXPECT_GT(dma_speedup, lu_speedup)
        << "loop-unrolled must scale worse than DMA";
}

TEST(SpmmSim, ThroughputScalesWithBandwidth)
{
    // Fig. 6 (top): GFLOPS linear in per-slice bandwidth.
    graph::Csr csr = testGraph(10, 20000);
    PiumaConfig cfg = smallConfig(2);
    cfg.dramBandwidthScale = 0.5;
    const auto half = simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma);
    cfg.dramBandwidthScale = 1.0;
    const auto full = simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma);
    const double ratio = full.gflops / half.gflops;
    EXPECT_GT(ratio, 1.7);
    EXPECT_LT(ratio, 2.2);
}

TEST(SpmmSim, LatencyInsensitiveWithFullThreads)
{
    // Fig. 6 (bottom): 8x DRAM latency (45 -> 360 ns) costs little
    // when 16 threads/MTP hide it.
    graph::Csr csr = testGraph(10, 20000);
    PiumaConfig cfg = smallConfig(2);
    const auto base = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    cfg.dramLatencyScale = 8.0;
    const auto slow = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    EXPECT_LT(slow.makespanNs / base.makespanNs, 1.3);
}

TEST(SpmmSim, SingleThreadLosesLatencyToleranceAtSmallK)
{
    // Fig. 7: with 1 thread/MTP and K=8 the NNZ latency hits the
    // critical path; the same latency increase now hurts.
    graph::Csr csr = testGraph(10, 20000);
    PiumaConfig cfg = smallConfig(2);
    cfg.threadsPerMtp = 1;
    const auto base = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    cfg.dramLatencyScale = 8.0;
    const auto slow = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    EXPECT_GT(slow.makespanNs / base.makespanNs, 1.5);
}

TEST(SpmmSim, LargeKMoreTolerantThanSmallKAtOneThread)
{
    // Fig. 7: at 1 thread/MTP, K=256 retains more latency tolerance
    // than K=8 (larger DMA transfers per NNZ read).
    graph::Csr csr = testGraph(9, 8000);
    PiumaConfig cfg = smallConfig(2);
    cfg.threadsPerMtp = 1;

    const auto base8 = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    const auto base256 = simulateSpmm(csr, 256, cfg, SpmmAlgorithm::Dma);
    cfg.dramLatencyScale = 8.0;
    const auto slow8 = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    const auto slow256 = simulateSpmm(csr, 256, cfg, SpmmAlgorithm::Dma);

    const double degradation8 = slow8.makespanNs / base8.makespanNs;
    const double degradation256 = slow256.makespanNs / base256.makespanNs;
    EXPECT_GT(degradation8, degradation256);
}

TEST(SpmmSim, NnzShareOfTrafficShrinksWithK)
{
    // Fig. 8 (right): the execution-time share attributable to NNZ
    // reads falls as the embedding dimension grows ("2 NNZs per 8 DMA
    // reads/writes at K=8 vs 2 per 256 at K=256"). Engine time is
    // proportional to traffic, so compare the CSR-stream share of
    // DRAM reads.
    graph::Csr csr = testGraph(9, 8000);
    PiumaConfig cfg = smallConfig(2);
    const auto k8 = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
    const auto k256 = simulateSpmm(csr, 256, cfg, SpmmAlgorithm::Dma);
    const double share8 =
        static_cast<double>(k8.nnzReads) * 64.0 / k8.bytesRead;
    const double share256 =
        static_cast<double>(k256.nnzReads) * 64.0 / k256.bytesRead;
    EXPECT_GT(share8, 5.0 * share256);
}

TEST(SpmmSim, NetworkIsNotTheBottleneck)
{
    // Key takeaway 3: slice controllers saturate before network ports.
    graph::Csr csr = testGraph(11, 40000);
    const auto stats =
        simulateSpmm(csr, 64, smallConfig(8), SpmmAlgorithm::Dma);
    EXPECT_GT(stats.memUtilization, 0.5);
    EXPECT_LT(stats.netUtilization, stats.memUtilization);
}

TEST(SpmmSim, DeterministicAcrossRuns)
{
    graph::Csr csr = testGraph(8, 2000);
    PiumaConfig cfg = smallConfig(2);
    const auto a = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);
    const auto b = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);
    EXPECT_DOUBLE_EQ(a.makespanNs, b.makespanNs);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.dmaDescriptors, b.dmaDescriptors);
}

TEST(SpmmSim, DescriptorCountMatchesWorkload)
{
    // One ReadMulAcc per edge plus one WriteRow per row-visit.
    graph::Csr csr = testGraph(8, 2000);
    PiumaConfig cfg = smallConfig(2);
    const auto stats = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);
    EXPECT_GE(stats.dmaDescriptors, csr.numEdges() + csr.numVertices());
    EXPECT_LE(stats.dmaDescriptors, csr.numEdges() + csr.numVertices() +
                                        cfg.totalThreads());
}

TEST(NodeModel, PeakDenseReflectsScalarPipelines)
{
    PiumaConfig cfg = PiumaConfig::node();
    const NodeModelParams params;
    // 256 cores x 4 MTPs x 1 GHz x denseFlopPerMtpCycle: a few
    // TFLOP/s at best — far below a GPU's dense throughput, the
    // paper's reason dense dominates PIUMA at K=256.
    EXPECT_DOUBLE_EQ(peakDenseGflops(cfg),
                     256.0 * 4.0 * params.denseFlopPerMtpCycle);
    EXPECT_LT(peakDenseGflops(cfg), 19500.0 * 0.5);
}

TEST(NodeModel, SpmmTimeTracksAnalyticalBound)
{
    PiumaConfig cfg = PiumaConfig::node();
    model::SpmmWorkload w{1u << 20, 1u << 24, 128};
    NodeModelParams params;
    const double t = spmmTimeNs(cfg, w, params);
    const double bw = cfg.aggregateBandwidth();
    const auto est = model::estimateSpmm(w, bw, bw);
    EXPECT_GT(t, est.timeNs);
    EXPECT_LT(t, est.timeNs / params.spmmEfficiency * 1.01 +
                     params.kernelLaunchOverheadNs * 1.01);
}

TEST(NodeModel, DenseBecomesComputeBoundAtLargeK)
{
    PiumaConfig cfg = PiumaConfig::node();
    // At K=256 dense time should be compute-limited (scalar MACs),
    // i.e. much larger than the pure streaming time.
    const uint64_t v = 1u << 22;
    const double t = denseMmTimeNs(cfg, v, 256, 256);
    const double stream_ns =
        static_cast<double>(v) * (256 + 256) * 4.0 /
        cfg.aggregateBandwidth();
    EXPECT_GT(t, 5.0 * stream_ns);
}

} // namespace

// ------------------------------------------- extensions & ablations

#include "piuma/walk_programs.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::piuma;

graph::Csr
walkGraph()
{
    static graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(9, 4000, graph::rmatSkewed(), 31));
    return csr;
}

TEST(RandomWalk, CompletesAllSteps)
{
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto s = simulateRandomWalk(walkGraph(), 256, 8, cfg);
    EXPECT_EQ(s.totalSteps, 256u * 8u);
    EXPECT_GT(s.stepsPerNs, 0.0);
    EXPECT_GT(s.avgStepLatencyNs, 2.0 * cfg.dramLatencyNs);
}

TEST(RandomWalk, Deterministic)
{
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto a = simulateRandomWalk(walkGraph(), 128, 8, cfg, 5);
    const auto b = simulateRandomWalk(walkGraph(), 128, 8, cfg, 5);
    EXPECT_DOUBLE_EQ(a.makespanNs, b.makespanNs);
    EXPECT_EQ(a.simEvents, b.simEvents);
}

TEST(RandomWalk, ThroughputScalesWithThreads)
{
    // The latency-bound kernel: throughput ~ concurrent walkers.
    graph::Csr csr = walkGraph();
    PiumaConfig one;
    one.numCores = 2;
    one.threadsPerMtp = 1;
    PiumaConfig sixteen = one;
    sixteen.threadsPerMtp = 16;
    const auto s1 = simulateRandomWalk(csr, 2048, 8, one);
    const auto s16 = simulateRandomWalk(csr, 2048, 8, sixteen);
    EXPECT_GT(s16.stepsPerNs / s1.stepsPerNs, 4.0);
}

TEST(RandomWalk, LatencyBoundNotBandwidthBound)
{
    // Doubling DRAM latency should hurt a few-walker run almost
    // proportionally; doubling bandwidth should barely help.
    graph::Csr csr = walkGraph();
    PiumaConfig cfg;
    cfg.numCores = 2;
    cfg.threadsPerMtp = 1;
    const auto base = simulateRandomWalk(csr, 512, 8, cfg);
    PiumaConfig slow = cfg;
    slow.dramLatencyScale = 2.0;
    const auto lat = simulateRandomWalk(csr, 512, 8, slow);
    PiumaConfig wide = cfg;
    wide.dramBandwidthScale = 2.0;
    const auto bw = simulateRandomWalk(csr, 512, 8, wide);
    EXPECT_GT(lat.makespanNs / base.makespanNs, 1.4);
    EXPECT_LT(std::abs(bw.makespanNs / base.makespanNs - 1.0), 0.1);
}

TEST(DgasAblation, InterleaveNeverSlowerOnSkewedGraphs)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(11, 40000, graph::rmatSkewed(), 77));
    PiumaConfig cfg;
    cfg.numCores = 8;
    const auto striped = simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma);
    cfg.dgasFineInterleave = false;
    const auto pinned = simulateSpmm(csr, 64, cfg, SpmmAlgorithm::Dma);
    EXPECT_LE(striped.makespanNs, pinned.makespanNs * 1.02);
}

TEST(DgasAblation, RemoteFractionCountersAreConsistent)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(9, 8000, graph::rmatSkewed(), 21));
    PiumaConfig cfg;
    cfg.numCores = 8;
    const auto s = simulateSpmm(csr, 32, cfg, SpmmAlgorithm::Dma);
    EXPECT_GT(s.memAccesses, 0u);
    EXPECT_LE(s.memRemoteAccesses, s.memAccesses);
    EXPECT_GE(s.remoteAccessFraction, 0.0);
    EXPECT_LE(s.remoteAccessFraction, 1.0);
    EXPECT_GE(s.maxSliceBytesFraction, 1.0);
    // With fine interleave striping everything across 8 slices, almost
    // every access lands remote regardless of vertex order.
    EXPECT_GT(s.remoteAccessFraction, 0.7);
}

TEST(DgasAblation, BlockedPlacementRewardsIslandizedOrder)
{
    // The locality story of the reorder sweeps, end to end on the DES:
    // with blocked row placement and interleave off, an islandized
    // relabeling keeps neighbourhoods on their home slice and the
    // remote-access fraction drops well below a shuffled relabeling of
    // the same graph. Hashed placement (the default) must stay
    // order-blind.
    graph::Csr base = graph::normalizedAdjacency(
        graph::generateRmat(10, 20000, graph::rmatSkewed(), 5));
    const graph::Csr shuffled =
        graph::shuffleOrder(base.numVertices(), 99).applyToCsr(base);
    const graph::Csr islandized =
        graph::islandOrder(base, base.numVertices() / 8)
            .perm.applyToCsr(base);

    PiumaConfig cfg;
    cfg.numCores = 8;
    cfg.rowPlacement = RowPlacement::Blocked;
    cfg.dgasFineInterleave = false;
    const auto shuf =
        simulateSpmm(shuffled, 32, cfg, SpmmAlgorithm::Dma);
    const auto isl =
        simulateSpmm(islandized, 32, cfg, SpmmAlgorithm::Dma);
    // RMAT is expander-like, so most islands still have many cut
    // edges; the drop is real but modest. Real-world graphs with
    // community structure separate further.
    EXPECT_LT(isl.remoteAccessFraction,
              shuf.remoteAccessFraction * 0.95);

    // Hashed placement scatters rows independent of their ids, so the
    // two relabelings look statistically identical to it.
    PiumaConfig hashed;
    hashed.numCores = 8;
    hashed.dgasFineInterleave = false;
    const auto h_shuf =
        simulateSpmm(shuffled, 32, hashed, SpmmAlgorithm::Dma);
    const auto h_isl =
        simulateSpmm(islandized, 32, hashed, SpmmAlgorithm::Dma);
    EXPECT_NEAR(h_isl.remoteAccessFraction,
                h_shuf.remoteAccessFraction, 0.05);
}

TEST(NodeModelExt, DenseAcceleratorCutsDenseTime)
{
    PiumaConfig cfg = PiumaConfig::node();
    NodeModelParams scalar;
    NodeModelParams accel;
    accel.denseAcceleratorGflops = 32000.0;
    const double slow = denseMmTimeNs(cfg, 1u << 22, 256, 256, scalar);
    const double fast = denseMmTimeNs(cfg, 1u << 22, 256, 256, accel);
    EXPECT_GT(slow / fast, 3.0);
}

TEST(NodeModelExt, AcceleratorStillBandwidthBoundEventually)
{
    // An absurdly fast accelerator cannot beat the streaming time.
    PiumaConfig cfg = PiumaConfig::node();
    NodeModelParams accel;
    accel.denseAcceleratorGflops = 1e9;
    const uint64_t v = 1u << 22;
    const double t = denseMmTimeNs(cfg, v, 256, 256, accel);
    const double stream =
        static_cast<double>(v) * (256 + 256) * 4.0 /
        cfg.aggregateBandwidth();
    EXPECT_GE(t, stream);
}

TEST(NodeModelExt, FusionSavingsPositiveAndBounded)
{
    PiumaConfig cfg = PiumaConfig::node();
    const double saved = fusionSavingsNs(cfg, 1u << 20, 128);
    EXPECT_GT(saved, 0.0);
    // Cannot save more than the full glue+write traffic round trip.
    const double spmm = spmmTimeNs(
        cfg, model::SpmmWorkload{1u << 20, 1u << 24, 128});
    EXPECT_LT(saved, spmm);
}

TEST(RandomWalk, RejectsEmptyGraphThrows)
{
    PiumaConfig cfg;
    cfg.numCores = 1;
    graph::Coo empty(0);
    graph::Csr csr(empty);
    EXPECT_THROW(simulateRandomWalk(csr, 1, 1, cfg), pgcn::ShapeError);
}

TEST(PiumaConfig, InvalidConfigThrows)
{
    PiumaConfig cfg;
    cfg.numCores = 0;
    EXPECT_THROW(cfg.validate(), pgcn::ConfigError);
}

} // namespace

// --------------------------------------------------- dense-MM on DES

#include "piuma/dense_programs.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::piuma;

TEST(DenseSim, LargeKIsIssueBoundNearScalarPeak)
{
    // At K=256 the MAC loop dominates: throughput approaches the
    // scalar-pipeline peak (flop per MTP-cycle = 2 FLOP/MAC /
    // issueCostPerMac) and the pipelines saturate.
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto s = simulateDenseMm(1u << 12, 256, 256, cfg);
    const double peak_gflops = cfg.numCores * cfg.mtpsPerCore *
                               cfg.clockGhz * 2.0 /
                               cfg.issueCostPerMac;
    EXPECT_GT(s.gflops, 0.8 * peak_gflops);
    EXPECT_LE(s.gflops, 1.02 * peak_gflops);
    EXPECT_GT(s.issueUtilization, 0.8);
}

TEST(DenseSim, TinyKIsBandwidthBound)
{
    // K_in = K_out = 2 with quartered DRAM bandwidth: 8 FLOP per 16
    // streamed bytes; the memory system saturates while the scalar
    // pipelines idle — the opposite regime of K=256.
    PiumaConfig cfg;
    cfg.numCores = 2;
    cfg.dramBandwidthScale = 0.25;
    const auto s = simulateDenseMm(1u << 14, 2, 2, cfg);
    EXPECT_GT(s.memUtilization, 0.8);
    EXPECT_LT(s.issueUtilization, 0.5);
    EXPECT_GT(s.memUtilization, s.issueUtilization);
}

TEST(DenseSim, ScalesWithCores)
{
    PiumaConfig one;
    one.numCores = 1;
    PiumaConfig four;
    four.numCores = 4;
    const auto s1 = simulateDenseMm(1u << 12, 128, 128, one);
    const auto s4 = simulateDenseMm(1u << 12, 128, 128, four);
    EXPECT_GT(s4.gflops / s1.gflops, 3.0);
}

TEST(DenseSim, MatchesNodeModelWithinFactor)
{
    // The DES and the analytical node model should agree on the
    // compute-bound regime within a modest factor.
    PiumaConfig cfg;
    cfg.numCores = 4;
    const uint64_t v = 1u << 12;
    const auto s = simulateDenseMm(v, 256, 256, cfg);
    const double modeled = denseMmTimeNs(cfg, v, 256, 256);
    const double ratio = s.makespanNs / modeled;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(DenseSim, Deterministic)
{
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto a = simulateDenseMm(1u << 10, 64, 64, cfg);
    const auto b = simulateDenseMm(1u << 10, 64, 64, cfg);
    EXPECT_DOUBLE_EQ(a.makespanNs, b.makespanNs);
    EXPECT_EQ(a.simEvents, b.simEvents);
}

} // namespace

// ------------------------------------- parameterised DES properties

namespace {

using namespace pgcn;
using namespace pgcn::piuma;

/** (cores, K): the DMA SpMM must stay within sane bounds of the
 * bandwidth model everywhere in the configuration plane, and never
 * beat the bound. */
class DmaModelBounds
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(DmaModelBounds, WithinModelEnvelope)
{
    const auto [cores, k] = GetParam();
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(11, 40000, graph::rmatSkewed(), 3));
    PiumaConfig cfg;
    cfg.numCores = cores;
    const auto stats = simulateSpmm(csr, k, cfg, SpmmAlgorithm::Dma);
    const double bw = cfg.aggregateBandwidth();
    const auto est = model::estimateSpmm(
        model::SpmmWorkload{csr.numVertices(), csr.numEdges(), k}, bw,
        bw);
    const double fraction = est.timeNs / stats.makespanNs;
    EXPECT_GT(fraction, 0.5) << "cores=" << cores << " K=" << k;
    EXPECT_LE(fraction, 1.05) << "cores=" << cores << " K=" << k;
    // Conservation: FLOP count is exact regardless of timing.
    EXPECT_DOUBLE_EQ(stats.flop, est.flop);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigPlane, DmaModelBounds,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(8u, 32u, 128u)));

/** Makespan must be monotone non-increasing in core count. */
TEST(SpmmSimProperty, MakespanMonotoneInCores)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(10, 20000, graph::rmatSkewed(), 8));
    double prev = 1e300;
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        PiumaConfig cfg;
        cfg.numCores = cores;
        const auto s = simulateSpmm(csr, 32, cfg, SpmmAlgorithm::Dma);
        EXPECT_LT(s.makespanNs, prev) << cores << " cores";
        prev = s.makespanNs;
    }
}

/** Makespan must be monotone non-decreasing in DRAM latency. */
TEST(SpmmSimProperty, MakespanMonotoneInLatency)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(10, 20000, graph::rmatSkewed(), 8));
    double prev = 0.0;
    for (double scale : {1.0, 4.0, 16.0}) {
        PiumaConfig cfg;
        cfg.numCores = 2;
        cfg.threadsPerMtp = 2;
        cfg.dramLatencyScale = scale;
        const auto s = simulateSpmm(csr, 8, cfg, SpmmAlgorithm::Dma);
        EXPECT_GE(s.makespanNs, prev) << "latency x" << scale;
        prev = s.makespanNs;
    }
}

/** K=1 (degenerate single-column features) must still be exact. */
TEST(SpmmSimProperty, SingleColumnFeatures)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(8, 2000, graph::rmatSkewed(), 8));
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto s = simulateSpmm(csr, 1, cfg, SpmmAlgorithm::Dma);
    EXPECT_DOUBLE_EQ(s.flop, 2.0 * static_cast<double>(csr.numEdges()));
    EXPECT_GT(s.makespanNs, 0.0);
}

/** A single-vertex graph (one self loop) is the smallest valid run. */
TEST(SpmmSimProperty, SingleVertexGraph)
{
    graph::Coo coo(1);
    graph::Csr csr = graph::normalizedAdjacency(coo);
    ASSERT_EQ(csr.numEdges(), 1u);
    PiumaConfig cfg;
    cfg.numCores = 1;
    for (auto alg : {SpmmAlgorithm::Dma, SpmmAlgorithm::LoopUnrolled}) {
        const auto s = simulateSpmm(csr, 4, cfg, alg);
        EXPECT_GT(s.makespanNs, 0.0) << spmmAlgorithmName(alg);
    }
}

/** Loop-unrolled traffic also covers the analytical feature bytes. */
TEST(SpmmSimProperty, LoopUnrolledTrafficCoversModel)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(9, 4000, graph::rmatSkewed(), 9));
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto s = simulateSpmm(csr, 32, cfg, SpmmAlgorithm::LoopUnrolled);
    const auto est = model::estimateSpmm(
        model::SpmmWorkload{csr.numVertices(), csr.numEdges(), 32}, 1.0,
        1.0);
    EXPECT_GE(s.bytesRead, est.bytesFeature);
    EXPECT_GE(s.bytesWritten, est.bytesWrite);
}

} // namespace

// --------------------------------------------------- DES GCN layers

#include "piuma/gcn_sim.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::piuma;

TEST(GcnSim, ThreeLayerBreakdownAccountsAllTime)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(9, 4000, graph::rmatSkewed(), 61));
    PiumaConfig cfg;
    cfg.numCores = 2;
    const std::vector<GcnSimLayer> layers{{64, 32}, {32, 32}, {32, 8}};
    const auto r = simulateGcn(csr, layers, cfg);
    ASSERT_EQ(r.spmmLayers.size(), 3u);
    ASSERT_EQ(r.denseLayers.size(), 3u);
    EXPECT_DOUBLE_EQ(r.totalNs, r.spmmNs + r.denseNs);
    EXPECT_NEAR(r.spmmFraction() + r.denseFraction(), 1.0, 1e-12);
    EXPECT_GT(r.spmmNs, 0.0);
    EXPECT_GT(r.denseNs, 0.0);
}

TEST(GcnSim, DenseShareGrowsWithEmbeddingDim)
{
    // The Fig. 10 mechanism, reproduced end-to-end on the simulator
    // instead of the analytical node model.
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(9, 4000, graph::rmatSkewed(), 62));
    PiumaConfig cfg;
    cfg.numCores = 2;
    const auto small =
        simulateGcn(csr, {{64, 8}, {8, 8}, {8, 8}}, cfg);
    const auto large =
        simulateGcn(csr, {{64, 256}, {256, 256}, {256, 256}}, cfg);
    EXPECT_GT(large.denseFraction(), small.denseFraction());
    EXPECT_GT(large.denseFraction(), 0.5);
}

TEST(GcnSim, Deterministic)
{
    graph::Csr csr = graph::normalizedAdjacency(
        graph::generateRmat(8, 2000, graph::rmatSkewed(), 63));
    PiumaConfig cfg;
    cfg.numCores = 2;
    const std::vector<GcnSimLayer> layers{{16, 16}};
    const auto a = simulateGcn(csr, layers, cfg);
    const auto b = simulateGcn(csr, layers, cfg);
    EXPECT_DOUBLE_EQ(a.totalNs, b.totalNs);
}

// ---------------------------------------------------------------------------
// Differential: timing model vs functional kernels
//
// The simulator never touches feature data, so its work and traffic
// accounting could silently drift from what the real computation
// does. This suite walks a grid of random graphs and pins the
// simulated operation counts to the *functional* SpMM kernels in
// src/kernels executing the identical CSR: the MACs the reference
// kernel performs (counted by instrumenting its exact traversal) must
// equal the FLOP the simulator charges, and the simulated DRAM
// traffic must respect conservation and the compulsory-traffic floor
// of the same workload.

/**
 * MAC count of H_out = A * H_in on @p csr with K-wide features,
 * traversing rows/non-zeros exactly as kernels::spmmReference does.
 */
uint64_t
referenceMacCount(const graph::Csr &csr, uint64_t k)
{
    uint64_t macs = 0;
    for (graph::VertexId u = 0; u < csr.numVertices(); ++u)
        macs += static_cast<uint64_t>(csr.degree(u)) * k;
    return macs;
}

class SpmmDifferential
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool, unsigned>>
{
};

TEST_P(SpmmDifferential, SimCountsMatchFunctionalKernel)
{
    const auto [scale, skewed, k] = GetParam();
    const graph::Csr csr = graph::normalizedAdjacency(graph::generateRmat(
        scale, 6ull << scale,
        skewed ? graph::rmatSkewed() : graph::rmatUniform(),
        1000 + scale));

    // Functional ground truth: run the actual kernels on the same CSR
    // and check they agree with each other, so the MAC count below is
    // the count of a computation that demonstrably happened.
    tensor::DenseMatrix h_in(csr.numVertices(), k);
    h_in.fillRandom(7, 1.0f);
    tensor::DenseMatrix ref_out;
    kernels::spmmReference(csr, h_in, ref_out);
    parallel::ThreadPool pool(2);
    tensor::DenseMatrix par_out;
    kernels::spmmEdgeParallel(csr, h_in, par_out, pool);
    double max_diff = 0.0;
    for (graph::VertexId u = 0; u < csr.numVertices(); ++u)
        for (uint64_t c = 0; c < k; ++c)
            max_diff = std::max(
                max_diff, std::abs(static_cast<double>(
                              ref_out.at(u, c) - par_out.at(u, c))));
    EXPECT_LT(max_diff, 1e-4);

    const uint64_t macs = referenceMacCount(csr, k);
    EXPECT_EQ(macs, static_cast<uint64_t>(csr.numEdges()) * k);

    const model::SpmmEstimate est = model::estimateSpmm(
        {csr.numVertices(), csr.numEdges(), k},
        PiumaConfig{}.aggregateBandwidth(),
        PiumaConfig{}.aggregateBandwidth());

    for (const auto alg :
         {SpmmAlgorithm::LoopUnrolled, SpmmAlgorithm::Dma}) {
        const auto s = simulateSpmm(csr, static_cast<unsigned>(k),
                                    smallConfig(2), alg);
        // The simulator charges exactly the kernel's arithmetic:
        // 2 FLOP (multiply + add) per MAC, no more, no fewer.
        EXPECT_DOUBLE_EQ(s.flop, 2.0 * static_cast<double>(macs))
            << spmmAlgorithmName(alg);
        // Conservation: every byte a slice served is a byte somebody
        // read or wrote.
        EXPECT_NEAR(s.bytesServed, s.bytesRead + s.bytesWritten,
                    1e-6 * s.bytesServed)
            << spmmAlgorithmName(alg);
        // Compulsory-traffic floor (paper Eqs. 1-3): the simulated
        // run cannot read fewer bytes than the no-reuse feature
        // traffic of the same workload, nor write less than one
        // K-vector per row the kernel actually produces (empty rows
        // are never touched by the edge-parallel traversal).
        uint64_t nonempty = 0;
        for (graph::VertexId u = 0; u < csr.numVertices(); ++u)
            nonempty += csr.degree(u) > 0 ? 1 : 0;
        EXPECT_GE(s.bytesRead, est.bytesFeature)
            << spmmAlgorithmName(alg);
        EXPECT_GE(s.bytesWritten,
                  static_cast<double>(nonempty * k) * 4.0)
            << spmmAlgorithmName(alg);
        EXPECT_GT(s.makespanNs, 0.0);
        // Throughput is derived, not independently accumulated.
        EXPECT_NEAR(s.gflops, s.flop / s.makespanNs,
                    1e-9 * s.gflops);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CsrGrid, SpmmDifferential,
    ::testing::Combine(::testing::Values(6u, 8u),
                       ::testing::Bool(),
                       ::testing::Values(8u, 64u)),
    [](const auto &info) {
        return "scale" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_skewed_k" : "_uniform_k") +
               std::to_string(std::get<2>(info.param));
    });

} // namespace
