/**
 * @file
 * Unique per-test temp directories. `ctest -j` runs every discovered
 * TEST as its own process, so two tests (or two shards of a
 * parameterized suite) that write the same fixed file under
 * ::testing::TempDir() race each other. Every checkpoint-, trace- or
 * graph-file-writing test routes its paths through here instead: the
 * directory name folds in the suite name, the test name and the pid,
 * so concurrent shards never collide and a crashed test leaves its
 * artefacts behind for postmortem inspection.
 */
#ifndef PGCN_TESTS_TEST_PATHS_HPP
#define PGCN_TESTS_TEST_PATHS_HPP

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace pgcn_test {

/**
 * Directory unique to the currently running test, created on first
 * use. Must be called from inside a TEST body (it reads
 * current_test_info()).
 */
inline std::filesystem::path
uniqueTestDir()
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string leaf = "pgcn_";
    leaf += info->test_suite_name();
    leaf += '_';
    leaf += info->name();
    leaf += '_';
#ifdef _WIN32
    leaf += std::to_string(_getpid());
#else
    leaf += std::to_string(::getpid());
#endif
    // Parameterized tests carry '/' in both suite and test names;
    // keep the whole thing one path component.
    for (char &c : leaf)
        if (c == '/' || c == '\\')
            c = '_';
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / leaf;
    std::filesystem::create_directories(dir);
    return dir;
}

/** A file path inside uniqueTestDir(). */
inline std::string
testPath(const std::string &leaf)
{
    return (uniqueTestDir() / leaf).string();
}

} // namespace pgcn_test

#endif // PGCN_TESTS_TEST_PATHS_HPP
