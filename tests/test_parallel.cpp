/**
 * @file
 * Unit tests for the parallel runtime: thread pool lifecycle, both
 * scheduling policies covering all iterations exactly once, atomic
 * float accumulation under contention.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "parallel/atomic_float.hpp"
#include "parallel/numa.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace pgcn::parallel;

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    int calls = 0;
    pool.parallelRegion([&](unsigned id) {
        EXPECT_EQ(id, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RegionRunsOnEveryThread)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(4);
    pool.parallelRegion([&](unsigned id) { ++hits[id]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RegionReusableAcrossLaunches)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelRegion([&](unsigned) { ++total; });
    EXPECT_EQ(total.load(), 150);
}

class ScheduleCoverage : public ::testing::TestWithParam<
                             std::tuple<Schedule, unsigned, uint64_t,
                                        uint64_t>>
{
};

TEST_P(ScheduleCoverage, EveryIterationExactlyOnce)
{
    const auto [sched, threads, count, chunk] = GetParam();
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(count);
    pool.parallelFor(count, sched, chunk,
                     [&](unsigned, uint64_t begin, uint64_t end) {
                         for (uint64_t i = begin; i < end; ++i)
                             ++visits[i];
                     });
    for (uint64_t i = 0; i < count; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "iteration " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScheduleCoverage,
    ::testing::Values(
        std::make_tuple(Schedule::Static, 1u, uint64_t{100}, uint64_t{1}),
        std::make_tuple(Schedule::Static, 4u, uint64_t{100}, uint64_t{1}),
        std::make_tuple(Schedule::Static, 4u, uint64_t{3}, uint64_t{1}),
        std::make_tuple(Schedule::Static, 8u, uint64_t{1000}, uint64_t{1}),
        std::make_tuple(Schedule::Dynamic, 1u, uint64_t{100}, uint64_t{7}),
        std::make_tuple(Schedule::Dynamic, 4u, uint64_t{100}, uint64_t{7}),
        std::make_tuple(Schedule::Dynamic, 4u, uint64_t{1}, uint64_t{64}),
        std::make_tuple(Schedule::Dynamic, 8u, uint64_t{1000},
                        uint64_t{13})));

TEST(ParallelFor, ZeroIterationsIsNoOp)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, Schedule::Dynamic, 8,
                     [&](unsigned, uint64_t, uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SumMatchesSequential)
{
    ThreadPool pool(4);
    const uint64_t n = 10000;
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(n, Schedule::Dynamic, 32,
                     [&](unsigned, uint64_t begin, uint64_t end) {
                         uint64_t local = 0;
                         for (uint64_t i = begin; i < end; ++i)
                             local += i;
                         sum += local;
                     });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

namespace {

/** RAII env-var override so a failed EXPECT cannot leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

float poolSum(ThreadPool &pool, uint64_t n)
{
    std::vector<float> partial(pool.numThreads(), 0.0f);
    pool.parallelFor(n, Schedule::Static, 64,
                     [&](unsigned id, uint64_t begin, uint64_t end) {
                         float *scratch = pool.scratchFloats(id, 8);
                         scratch[0] = 0.0f;
                         for (uint64_t i = begin; i < end; ++i)
                             scratch[0] += float(i % 17) * 0.25f;
                         partial[id] = scratch[0];
                     });
    float total = 0.0f;
    for (const float p : partial)
        total += p;
    return total;
}

} // namespace

TEST(ThreadPoolNuma, AutoFallsBackCleanlyOnSingleNodeHost)
{
    // CI containers (and this host) expose a single NUMA node. Auto
    // must detect nothing to do and behave exactly like Off: same
    // thread count, no pinning, single reported node.
    const NumaTopology topo = detectNumaTopology();
    ScopedEnv env("PGCN_NUMA", "auto");
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);
    if (!topo.multiNode()) {
        EXPECT_FALSE(pool.numaPinned());
        EXPECT_EQ(pool.numNumaNodes(), 1u);
        for (unsigned tid = 0; tid < 4; ++tid)
            EXPECT_EQ(pool.numaNodeOf(tid), 0u);
    } else {
        EXPECT_TRUE(pool.numaPinned());
        EXPECT_GE(pool.numNumaNodes(), 2u);
    }
}

TEST(ThreadPoolNuma, AutoMatchesOffExactly)
{
    // Pinning relocates threads and memory but must never change what
    // is computed: identical float results, identical coverage.
    const uint64_t n = 20000;
    float off_sum = 0.0f;
    float auto_sum = 0.0f;
    {
        ScopedEnv env("PGCN_NUMA", "off");
        ThreadPool pool(4);
        off_sum = poolSum(pool, n);
    }
    {
        ScopedEnv env("PGCN_NUMA", "auto");
        ThreadPool pool(4);
        auto_sum = poolSum(pool, n);
    }
    EXPECT_EQ(off_sum, auto_sum);
}

TEST(ThreadPoolNuma, SingleThreadPoolNeverPins)
{
    // The inline (num_threads == 1) path must not pin the caller even
    // on a multi-node host: the caller's affinity is not ours to own.
    ScopedEnv env("PGCN_NUMA", "auto");
    ThreadPool pool(1);
    EXPECT_FALSE(pool.numaPinned());
    EXPECT_EQ(pool.numNumaNodes(), 1u);
    int calls = 0;
    pool.parallelRegion([&](unsigned) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolNuma, UnknownValueWarnsAndStaysOff)
{
    ScopedEnv env("PGCN_NUMA", "banana");
    ThreadPool pool(2);
    EXPECT_FALSE(pool.numaPinned());
    EXPECT_EQ(pool.numNumaNodes(), 1u);
}

TEST(NumaTopology, ParseCpuListHandlesRangesAndSingles)
{
    const auto cpus = parseCpuList("0-3,8,10-11");
    const std::vector<unsigned> expect = {0, 1, 2, 3, 8, 10, 11};
    EXPECT_EQ(cpus, expect);
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("   \n").empty());
}

TEST(NumaTopology, DetectionAlwaysYieldsUsableTopology)
{
    const NumaTopology topo = detectNumaTopology();
    ASSERT_GE(topo.numNodes(), 1u);
    for (const auto &cpus : topo.nodeCpus)
        EXPECT_FALSE(cpus.empty());
}

TEST(AtomicFloat, SingleThreadAdds)
{
    float x = 1.5f;
    atomicAddFloat(&x, 2.25f);
    EXPECT_FLOAT_EQ(x, 3.75f);
}

TEST(AtomicFloat, NoLostUpdatesUnderContention)
{
    ThreadPool pool(8);
    float target = 0.0f;
    const int per_thread = 10000;
    pool.parallelRegion([&](unsigned) {
        for (int i = 0; i < per_thread; ++i)
            atomicAddFloat(&target, 1.0f);
    });
    // 80k unit increments stay exactly representable in float.
    EXPECT_FLOAT_EQ(target, 8.0f * per_thread);
}

} // namespace
