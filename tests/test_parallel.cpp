/**
 * @file
 * Unit tests for the parallel runtime: thread pool lifecycle, both
 * scheduling policies covering all iterations exactly once, atomic
 * float accumulation under contention.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/atomic_float.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace pgcn::parallel;

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    int calls = 0;
    pool.parallelRegion([&](unsigned id) {
        EXPECT_EQ(id, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RegionRunsOnEveryThread)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(4);
    pool.parallelRegion([&](unsigned id) { ++hits[id]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RegionReusableAcrossLaunches)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelRegion([&](unsigned) { ++total; });
    EXPECT_EQ(total.load(), 150);
}

class ScheduleCoverage : public ::testing::TestWithParam<
                             std::tuple<Schedule, unsigned, uint64_t,
                                        uint64_t>>
{
};

TEST_P(ScheduleCoverage, EveryIterationExactlyOnce)
{
    const auto [sched, threads, count, chunk] = GetParam();
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(count);
    pool.parallelFor(count, sched, chunk,
                     [&](unsigned, uint64_t begin, uint64_t end) {
                         for (uint64_t i = begin; i < end; ++i)
                             ++visits[i];
                     });
    for (uint64_t i = 0; i < count; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "iteration " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScheduleCoverage,
    ::testing::Values(
        std::make_tuple(Schedule::Static, 1u, uint64_t{100}, uint64_t{1}),
        std::make_tuple(Schedule::Static, 4u, uint64_t{100}, uint64_t{1}),
        std::make_tuple(Schedule::Static, 4u, uint64_t{3}, uint64_t{1}),
        std::make_tuple(Schedule::Static, 8u, uint64_t{1000}, uint64_t{1}),
        std::make_tuple(Schedule::Dynamic, 1u, uint64_t{100}, uint64_t{7}),
        std::make_tuple(Schedule::Dynamic, 4u, uint64_t{100}, uint64_t{7}),
        std::make_tuple(Schedule::Dynamic, 4u, uint64_t{1}, uint64_t{64}),
        std::make_tuple(Schedule::Dynamic, 8u, uint64_t{1000},
                        uint64_t{13})));

TEST(ParallelFor, ZeroIterationsIsNoOp)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, Schedule::Dynamic, 8,
                     [&](unsigned, uint64_t, uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SumMatchesSequential)
{
    ThreadPool pool(4);
    const uint64_t n = 10000;
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(n, Schedule::Dynamic, 32,
                     [&](unsigned, uint64_t begin, uint64_t end) {
                         uint64_t local = 0;
                         for (uint64_t i = begin; i < end; ++i)
                             local += i;
                         sum += local;
                     });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(AtomicFloat, SingleThreadAdds)
{
    float x = 1.5f;
    atomicAddFloat(&x, 2.25f);
    EXPECT_FLOAT_EQ(x, 3.75f);
}

TEST(AtomicFloat, NoLostUpdatesUnderContention)
{
    ThreadPool pool(8);
    float target = 0.0f;
    const int per_thread = 10000;
    pool.parallelRegion([&](unsigned) {
        for (int i = 0; i < per_thread; ++i)
            atomicAddFloat(&target, 1.0f);
    });
    // 80k unit increments stay exactly representable in float.
    EXPECT_FLOAT_EQ(target, 8.0f * per_thread);
}

} // namespace
