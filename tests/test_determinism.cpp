/**
 * @file
 * Determinism regression tests for the discrete-event core.
 *
 * Two guarantees are pinned here:
 *
 *  1. Run-to-run determinism: simulating the same workload twice in
 *     one process yields bit-identical simulated times, event counts,
 *     and stall breakdowns (the engine has no hidden global state).
 *
 *  2. Golden values: simulated results captured from the seed
 *     implementation (single std::priority_queue of std::function
 *     events). Any event-engine change — arenas, now queue, calendar
 *     wheel, completion streams, compiler-flag changes — must
 *     reproduce these bits exactly, proving it altered wall-clock
 *     behaviour only, never simulated results. If a change breaks
 *     these on purpose (a *model* change), re-derive the constants
 *     from the previous commit and say so in the commit message.
 */
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/normalize.hpp"
#include "piuma/dense_programs.hpp"
#include "piuma/spmm_programs.hpp"
#include "piuma/walk_programs.hpp"

namespace {

using namespace pgcn;
using namespace pgcn::piuma;

graph::Csr
goldenGraph(uint32_t scale, graph::EdgeId edges, uint64_t seed)
{
    return graph::normalizedAdjacency(
        graph::generateRmat(scale, edges, graph::rmatSkewed(), seed));
}

PiumaConfig
twoCores()
{
    PiumaConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

TEST(Determinism, SpmmRunTwiceBitIdentical)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const PiumaConfig cfg = twoCores();
    const SpmmRunStats a = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);
    const SpmmRunStats b = simulateSpmm(csr, 16, cfg, SpmmAlgorithm::Dma);

    EXPECT_EQ(a.makespanNs, b.makespanNs);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.dmaDescriptors, b.dmaDescriptors);
    EXPECT_EQ(a.nnzReads, b.nnzReads);
    EXPECT_EQ(a.nnzStallNs, b.nnzStallNs);
    EXPECT_EQ(a.rowOffsetStallNs, b.rowOffsetStallNs);
    EXPECT_EQ(a.featureStallNs, b.featureStallNs);
    EXPECT_EQ(a.dmaQueueStallNs, b.dmaQueueStallNs);
    EXPECT_EQ(a.issueNs, b.issueNs);
    EXPECT_EQ(a.bytesRead, b.bytesRead);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
}

// Golden 1: the DMA SpMM program. RMAT scale 8 / 2000 edges / seed 99,
// K=16, 2 cores. Values captured from the seed engine at %.17g — 17
// significant digits round-trip an IEEE double exactly, so
// EXPECT_DOUBLE_EQ means bit-identical.
TEST(Determinism, GoldenDmaSpmm)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const SpmmRunStats s =
        simulateSpmm(csr, 16, twoCores(), SpmmAlgorithm::Dma);

    EXPECT_DOUBLE_EQ(s.makespanNs, 10712.857142857198);
    EXPECT_EQ(s.simEvents, 22697u);
    EXPECT_EQ(s.dmaDescriptors, 3142u);
    EXPECT_DOUBLE_EQ(s.nnzStallNs, 444165.11607144284);
    EXPECT_DOUBLE_EQ(s.rowOffsetStallNs, 323628.40178571834);
    EXPECT_DOUBLE_EQ(s.featureStallNs, 0.0);
    EXPECT_DOUBLE_EQ(s.dmaQueueStallNs, 231330.3839286021);
    EXPECT_DOUBLE_EQ(s.issueNs, 0.0);
    EXPECT_DOUBLE_EQ(s.bytesRead, 274048.0);
    EXPECT_DOUBLE_EQ(s.bytesWritten, 23936.0);
}

// Golden 2: the loop-unrolled SpMM program, same graph, K=8.
TEST(Determinism, GoldenLoopUnrolledSpmm)
{
    const graph::Csr csr = goldenGraph(8, 2000, 99);
    const SpmmRunStats s =
        simulateSpmm(csr, 8, twoCores(), SpmmAlgorithm::LoopUnrolled);

    EXPECT_DOUBLE_EQ(s.makespanNs, 7327.1428571425176);
    EXPECT_EQ(s.simEvents, 16987u);
    EXPECT_DOUBLE_EQ(s.nnzStallNs, 76212.714285708993);
    EXPECT_DOUBLE_EQ(s.featureStallNs, 464774.14285710535);
}

// Golden 3: the random-walk program (latency-bound pointer chasing).
// RMAT scale 9 / 4000 edges / seed 31; 128 walks of 8 steps, seed 5.
TEST(Determinism, GoldenRandomWalk)
{
    const graph::Csr csr = goldenGraph(9, 4000, 31);
    const WalkRunStats s = simulateRandomWalk(csr, 128, 8, twoCores(), 5);

    EXPECT_DOUBLE_EQ(s.makespanNs, 1499.5714285714287);
    EXPECT_EQ(s.simEvents, 5113u);
    EXPECT_EQ(s.totalSteps, 1024u);
}

// Golden 4: the dense update program, 1024 x 64 x 64.
TEST(Determinism, GoldenDenseMm)
{
    const DenseRunStats s = simulateDenseMm(1u << 10, 64, 64, twoCores());

    EXPECT_DOUBLE_EQ(s.makespanNs, 263473.14285714284);
    EXPECT_EQ(s.simEvents, 4096u);
}

} // namespace
