/**
 * @file
 * Unit tests for src/tensor: dense matrix container, GEMM kernels
 * (blocked vs reference, property sweeps over shapes), activations.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/dense_matrix.hpp"
#include "tensor/dense_mm.hpp"

namespace {

using namespace pgcn::tensor;

TEST(DenseMatrix, ZeroInitialised)
{
    DenseMatrix m(3, 4);
    for (uint64_t r = 0; r < 3; ++r)
        for (uint64_t c = 0; c < 4; ++c)
            EXPECT_EQ(m.at(r, c), 0.0f);
}

TEST(DenseMatrix, RowViewWritesThrough)
{
    DenseMatrix m(2, 3);
    auto row = m.row(1);
    row[2] = 7.0f;
    EXPECT_EQ(m.at(1, 2), 7.0f);
}

TEST(DenseMatrix, FillRandomDeterministic)
{
    DenseMatrix a(5, 5), b(5, 5);
    a.fillRandom(42);
    b.fillRandom(42);
    EXPECT_TRUE(allClose(a, b, 0.0f, 0.0f));
}

TEST(DenseMatrix, FillRandomRespectsScale)
{
    DenseMatrix m(100, 10);
    m.fillRandom(1, 0.5f);
    for (uint64_t i = 0; i < m.size(); ++i) {
        EXPECT_LE(m.data()[i], 0.5f);
        EXPECT_GE(m.data()[i], -0.5f);
    }
}

TEST(DenseMatrix, BytesAccountsForFloats)
{
    DenseMatrix m(10, 20);
    EXPECT_EQ(m.bytes(), 10u * 20u * 4u);
}

TEST(AllClose, DetectsShapeMismatch)
{
    EXPECT_FALSE(allClose(DenseMatrix(2, 2), DenseMatrix(2, 3)));
}

TEST(AllClose, ToleratesSmallError)
{
    DenseMatrix a(1, 1), b(1, 1);
    a.at(0, 0) = 1.0f;
    b.at(0, 0) = 1.0f + 1e-6f;
    EXPECT_TRUE(allClose(a, b));
    b.at(0, 0) = 1.1f;
    EXPECT_FALSE(allClose(a, b));
}

TEST(DenseMm, IdentityIsNoOp)
{
    DenseMatrix a(4, 4);
    for (uint64_t i = 0; i < 4; ++i)
        a.at(i, i) = 1.0f;
    DenseMatrix x(4, 3);
    x.fillRandom(3);
    DenseMatrix out;
    denseMmReference(a, x, out);
    EXPECT_TRUE(allClose(out, x, 0.0f, 0.0f));
}

TEST(DenseMm, KnownSmallProduct)
{
    DenseMatrix a(2, 2, {1, 2, 3, 4});
    DenseMatrix b(2, 2, {5, 6, 7, 8});
    DenseMatrix out;
    denseMmReference(a, b, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 50.0f);
}

/** Blocked GEMM must agree with the reference across shapes that
 * exercise every block-boundary case (exact multiple, remainder,
 * smaller-than-block). */
class BlockedGemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(BlockedGemmShapes, MatchesReference)
{
    const auto [m, k, n, block] = GetParam();
    DenseMatrix a(m, k), b(k, n);
    a.fillRandom(m * 131 + k);
    b.fillRandom(n * 17 + 5);
    DenseMatrix ref, out;
    denseMmReference(a, b, ref);
    denseMmBlocked(a, b, out, block);
    EXPECT_TRUE(allClose(ref, out, 1e-4f, 1e-4f))
        << "max diff " << maxAbsDiff(ref, out);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, BlockedGemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, 64),
                      std::make_tuple(8, 8, 8, 4),
                      std::make_tuple(64, 64, 64, 64),
                      std::make_tuple(65, 63, 31, 16),
                      std::make_tuple(3, 100, 7, 32),
                      std::make_tuple(128, 16, 256, 64),
                      std::make_tuple(37, 41, 43, 8)));

TEST(Relu, ClampsNegatives)
{
    DenseMatrix m(1, 4, {-1.0f, 0.0f, 2.0f, -0.5f});
    reluInPlace(m);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 3), 0.0f);
}

TEST(Bias, AddsPerColumn)
{
    DenseMatrix m(2, 3);
    const std::vector<float> bias{1.0f, 2.0f, 3.0f};
    addBiasInPlace(m, bias);
    for (uint64_t r = 0; r < 2; ++r)
        for (uint64_t c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(m.at(r, c), bias[c]);
}

TEST(DenseMatrixStorage, DataIs64ByteAligned)
{
    for (uint64_t rows : {1u, 3u, 17u, 100u}) {
        DenseMatrix m(rows, 5);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u)
            << rows << " rows";
    }
}

TEST(DenseMatrixStorage, ResizeKeepsCapacityWhenShrinking)
{
    DenseMatrix m(100, 8);
    m.fillRandom(1);
    const float *before = m.data();
    m.resize(10, 8); // fits existing capacity: no reallocation
    EXPECT_EQ(m.data(), before);
    EXPECT_EQ(m.rows(), 10u);
    EXPECT_EQ(m.cols(), 8u);
    // Content is reset, not carried over.
    for (uint64_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 0.0f);
    // Growing back within original capacity still reuses the buffer.
    m.resize(100, 8);
    EXPECT_EQ(m.data(), before);
    // Growing beyond it must reallocate.
    m.resize(200, 8);
    EXPECT_EQ(m.rows(), 200u);
    for (uint64_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(DenseMatrixStorage, ResizeForOverwriteSkipsZeroFill)
{
    DenseMatrix m(16, 8);
    m.fillRandom(2);
    const float *before = m.data();
    const float first = m.data()[0];
    m.resizeForOverwrite(16, 8); // same shape: no realloc, no memset
    EXPECT_EQ(m.data(), before);
    EXPECT_EQ(m.data()[0], first);
    m.resizeForOverwrite(4, 4); // shrink: buffer kept, shape updated
    EXPECT_EQ(m.data(), before);
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_EQ(m.cols(), 4u);
    m.resizeForOverwrite(64, 64); // grow past capacity: realloc
    EXPECT_EQ(m.size(), 4096u);
}

TEST(DenseMatrixStorage, CopyAndMovePreserveContent)
{
    DenseMatrix a(7, 9);
    a.fillRandom(5);
    DenseMatrix copy = a;
    EXPECT_TRUE(allClose(a, copy, 0.0f, 0.0f));
    EXPECT_NE(copy.data(), a.data());

    DenseMatrix assigned;
    assigned = a;
    EXPECT_TRUE(allClose(a, assigned, 0.0f, 0.0f));

    const float *buf = copy.data();
    DenseMatrix moved = std::move(copy);
    EXPECT_EQ(moved.data(), buf); // steal, not copy
    EXPECT_TRUE(allClose(a, moved, 0.0f, 0.0f));
    EXPECT_EQ(copy.size(), 0u); // NOLINT: moved-from is empty

    DenseMatrix move_assigned;
    move_assigned = std::move(moved);
    EXPECT_EQ(move_assigned.data(), buf);
    EXPECT_TRUE(allClose(a, move_assigned, 0.0f, 0.0f));
}

TEST(DenseMatrixStorage, CopyAssignReusesCapacity)
{
    DenseMatrix big(64, 16);
    big.fillRandom(3);
    DenseMatrix small(4, 4);
    small.fillRandom(4);
    const float *buf = big.data();
    big = small; // 16 floats into capacity 1024: reuse
    EXPECT_EQ(big.data(), buf);
    EXPECT_TRUE(allClose(big, small, 0.0f, 0.0f));
}

} // namespace

// --------------------------------------------------- row-wise ops

#include "tensor/ops.hpp"

namespace {

using namespace pgcn::tensor;

TEST(Softmax, RowsSumToOne)
{
    DenseMatrix m(4, 5);
    m.fillRandom(9, 3.0f);
    softmaxRowsInPlace(m);
    for (uint64_t r = 0; r < m.rows(); ++r) {
        float sum = 0.0f;
        for (float x : m.row(r)) {
            EXPECT_GE(x, 0.0f);
            EXPECT_LE(x, 1.0f);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Softmax, StableUnderLargeValues)
{
    DenseMatrix m(1, 3, {1000.0f, 1001.0f, 999.0f});
    softmaxRowsInPlace(m);
    // No NaN/inf; ordering preserved.
    EXPECT_GT(m.at(0, 1), m.at(0, 0));
    EXPECT_GT(m.at(0, 0), m.at(0, 2));
    EXPECT_NEAR(m.at(0, 0) + m.at(0, 1) + m.at(0, 2), 1.0f, 1e-5f);
}

TEST(Argmax, PicksLargestPerRow)
{
    DenseMatrix m(3, 4, {0, 1, 2, 3, /**/ 9, 1, 2, 3, /**/ 0, 5, 5, 0});
    const auto idx = argmaxRows(m);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 3u);
    EXPECT_EQ(idx[1], 0u);
    EXPECT_EQ(idx[2], 1u); // tie -> lower index
}

TEST(RowNorms, KnownValues)
{
    DenseMatrix m(2, 2, {3, 4, 0, 0});
    const auto norms = rowL2Norms(m);
    EXPECT_FLOAT_EQ(norms[0], 5.0f);
    EXPECT_FLOAT_EQ(norms[1], 0.0f);
}

TEST(ScaleRows, AppliesPerRowFactor)
{
    DenseMatrix m(2, 2, {1, 2, 3, 4});
    const std::vector<float> factors{2.0f, 0.5f};
    scaleRowsInPlace(m, factors);
    EXPECT_FLOAT_EQ(m.at(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 1.5f);
}

TEST(Mean, MatchesManualAverage)
{
    DenseMatrix m(2, 2, {1, 2, 3, 6});
    EXPECT_FLOAT_EQ(mean(m), 3.0f);
    EXPECT_FLOAT_EQ(mean(DenseMatrix{}), 0.0f);
}

} // namespace
